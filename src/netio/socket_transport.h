// netio::SocketTransport — the multi-process TCP implementation of the
// transport seam. One OS process hosts `ranks_per_proc` consecutive
// cluster nodes ("ranks"); this object is one process's view of the mesh.
//
// Mesh topology: one TCP connection per unordered *process* pair, keyed by
// each process's primary (lowest hosted) rank — 128 ranks in 8 processes
// need 28 connections, not 8128. Low-primary processes listen, high ones
// dial (ascending), and both sides handshake with a Hello/HelloAck
// carrying the protocol version, primary rank, cluster size, and
// ranks_per_proc. A version, identity, or shape mismatch refuses the
// connection loudly. All ranks sharing a process exchange messages through
// local mailboxes without touching the wire.
//
// I/O model: an epoll reactor. A small pool of I/O threads (io_threads,
// default 4 — independent of rank count) owns the peer sockets
// round-robin; all sockets are nonblocking. Reads run a per-peer state
// machine (4-byte length header, then the exact-size frame buffer — the
// frame is decoded zero-copy as a util::Buf). Writes drain the per-peer
// frame queue through writev: a backlog is coalesced into one Batch frame
// whose header and per-frame length prefixes are emitted as scatter
// segments around the already-encoded frames, so batching never copies a
// payload. A partial write parks a cursor and arms EPOLLOUT; the write
// counters and the write-latency histogram only ever record *successful*
// writes.
//
// Data path and the delivery contract (see net/transport.h):
//   * Send() is always called under the source node's agent lock, so sends
//     are serialized at the source. A send between two ranks of the same
//     process goes straight into the destination's mailbox (charged to the
//     recorders like the in-process channel transport, but never counted
//     as wire traffic); a remote send is framed and appended to the
//     destination process's connection queue. The sender's enqueue order
//     is a sub-order of the connection's total order and TCP preserves it,
//     so per-sender FIFO survives connection sharing.
//   * Adaptive batching: a reactor flush that finds a single queued frame
//     writes it immediately (an idle link adds no latency); a backlog —
//     senders outrunning the wire — is coalesced into one Batch image per
//     writev up to a size/count budget. Batching preserves queue order
//     exactly, so FIFO survives.
//   * Received frames are decoded defensively (peer input is untrusted)
//     and data packets are pushed into the destination rank's mailbox —
//     the same mailbox local sends use, so delivery order is whatever that
//     rank's single dispatcher pops, and a self-send is never re-entrant.
//     Payloads are aliased views of the received wire frame (util::Buf),
//     never re-copied between the wire and the mailbox.
//   * Statistics live in the local ranks' recorders only (send half at
//     Send, receive half at Dispatch); cluster totals are gathered over
//     control frames by the netio::Coordinator at the end of a run.
//
// Control frames (thread start/done, quiescence probes, stats, shutdown)
// share the per-process connection queues — so a control frame from
// process A to process B is FIFO-ordered against A's data traffic to B,
// which the coordinator's reset/start sequencing relies on — and are
// routed to the registered control handler from reactor-thread context,
// attributed to the remote process's primary rank.
//
// The wire_sent/wire_received counters (data frames only) feed the
// distributed quiescence detection: this process alone cannot know whether
// the cluster is idle, only the coordinator's cross-process probe can.
// shm-routed data frames count here too — wire_sent/wire_received stay a
// conservation law over *all* inter-process data traffic regardless of
// which medium carried it.
//
// Hot-path extensions (protocol v7, both negotiated per link at handshake):
//
//   * Wire deltas — each link keeps a per-(rank, object) cache of the last
//     transmitted payload on both ends (netio/delta.h has the lockstep
//     argument). An ObjReply or DiffMsg whose previous version the receiver
//     still holds goes out as a kDelta frame carrying only the dsm::Diff
//     runs against that version; anything else falls back to a full frame,
//     which is also what re-primes the cache. MigrateReply erases the
//     object's entry on both ends.
//   * Shared-memory rings — when two processes share a host (identity hash
//     exchanged in the Hello), data frames skip TCP and travel a per-
//     direction SPSC ring in the receiver's shm segment (netio/shm.h).
//     Control frames and heartbeats stay on TCP: the liveness plane keeps
//     measuring the real socket, and the coordinator planes are safe off
//     the data path because quiescence is monotone-counter-based (not
//     ordering-based), stats resets run only at global quiescence, and
//     run-start gating is ack-causal (the lead only starts after every
//     process acknowledged setup). The one data/control ordering hazard is
//     at attach time: if the TCP queue already holds data frames when shm
//     comes up, the link simply stays on TCP — never reorder, just decline.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/netio/delta.h"
#include "src/netio/frame.h"
#include "src/netio/shm.h"
#include "src/netio/socket.h"
#include "src/runtime/channel.h"
#include "src/runtime/mailbox_transport.h"
#include "src/util/bufpool.h"

namespace hmdsm::netio {

struct SocketTransportOptions {
  /// This process's primary node id: the lowest rank it hosts. Must be a
  /// multiple of ranks_per_proc; the process hosts ranks
  /// [rank, min(rank + ranks_per_proc, peers.size())).
  net::NodeId rank = 0;
  /// One "host:port" endpoint per rank (index = rank). Every process gets
  /// the identical list; all ranks of one process share that process's
  /// endpoint (only primaries' entries are ever dialed).
  std::vector<std::string> peers;
  /// Consecutive ranks hosted per OS process. Every process in the mesh
  /// must agree (validated by the handshake); the last process may host
  /// fewer when peers.size() is not a multiple.
  std::size_t ranks_per_proc = 1;
  /// Reactor I/O threads servicing the peer sockets (clamped to the peer
  /// process count). Per-process thread cost is O(io_threads), independent
  /// of rank count — the property that makes 128-rank meshes practical.
  std::size_t io_threads = 4;
  /// Pre-bound listening socket to adopt (the self-fork launcher binds
  /// ephemeral ports in the parent so children cannot collide); -1 binds
  /// peers[rank] instead.
  int listen_fd = -1;
  /// How long dialers retry while the mesh comes up.
  int connect_timeout_ms = 30000;
  /// Frames above this are a protocol violation (checked pre-allocation).
  std::uint32_t max_frame_bytes = kMaxFrameBytes;
  /// Adaptive frame batching: a reactor flush that finds more than one
  /// frame queued coalesces up to the budgets below into one Batch image —
  /// one wire write — and flushes immediately (no batching, no added
  /// latency) whenever the queue drains to a single frame. Off: one write
  /// per frame, the v1 behavior.
  bool batch_frames = true;
  std::size_t max_batch_frames = 64;
  std::size_t max_batch_bytes = 64 * 1024;
  /// Latency histograms: stamp packets entering the local mailboxes
  /// (dwell) and time each wire writev(2) (syscall latency). The cost is
  /// one clock read per packet / two per write; off leaves the hot path
  /// untouched.
  bool measure_latency = true;
  /// Link-liveness heartbeat period. Each reactor thread arms a periodic
  /// timerfd and probes every peer process it owns with a Heartbeat frame;
  /// the ack feeds that link's RTT histogram and last-heard clock. 0
  /// disables the plane entirely (no timerfd, no probe traffic).
  std::size_t heartbeat_interval_ms = 250;
  /// v7 wire deltas: diff-encode eligible data payloads against the last
  /// version the receiver holds (see the file comment). Effective on a link
  /// only when both ends advertise it.
  bool wire_delta = true;
  /// Shared-memory rings for co-located processes. Effective on a link only
  /// when both ends advertise it and report the same host identity;
  /// degrades to TCP on any setup failure.
  bool shm = true;
  /// Capacity of each per-direction shm ring.
  std::size_t shm_ring_bytes = 256 * 1024;
};

/// One peer-process link's health counters, snapshotted for the health
/// plane (poll log, /metrics). All numbers are since transport start.
struct LinkStats {
  net::NodeId primary = 0;   // the peer process's primary rank
  bool connected = false;    // handshake completed
  bool up = true;            // false once the link failed mid-run
  std::uint64_t hb_sent = 0;
  std::uint64_t hb_acked = 0;
  std::int64_t last_heard_ns = -1;  // transport clock; -1 = never
  std::int64_t last_ack_ns = -1;    // last heartbeat ack; -1 = never
  std::uint64_t eagain = 0;         // writes that hit a full socket buffer
  std::uint64_t epollout_arms = 0;  // EPOLLOUT arm transitions
  std::uint64_t kicks = 0;          // eventfd wakeups sent for this peer
  std::uint64_t frames_dropped = 0;  // enqueues refused (link down/closing)
  std::size_t queue_depth = 0;       // frames awaiting the reactor
  std::size_t queue_bytes = 0;       // backlog payload bytes
  bool shm = false;                  // data frames ride the shm ring
  std::uint64_t shm_msgs = 0;        // data frames sent via the ring
  stats::Histogram rtt;              // heartbeat round-trips (ns)
};

class SocketTransport final : public runtime::MailboxTransport {
 public:
  explicit SocketTransport(SocketTransportOptions options);
  ~SocketTransport() override;
  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  /// This process's primary (lowest hosted) rank.
  net::NodeId rank() const { return options_.rank; }
  /// Every rank this process hosts, ascending (primary first).
  const std::vector<net::NodeId>& local_ranks() const { return local_ranks_; }
  bool is_local(net::NodeId node) const {
    return node < options_.peers.size() && GroupOf(node) == group_;
  }
  /// OS processes in the mesh — the unit the control fan-ins count.
  std::size_t process_count() const { return group_count_; }
  /// Consecutive ranks each process hosts (the last may host fewer).
  std::size_t ranks_per_proc() const { return options_.ranks_per_proc; }
  /// The primary (lowest) rank of the process hosting `node`.
  net::NodeId primary_of(net::NodeId node) const {
    return PrimaryOf(GroupOf(node));
  }

  /// Control frames arrive here from reactor-thread context (serialized
  /// per peer process, concurrent across them), attributed to the remote
  /// process's primary rank. Set before Start().
  using ControlHandler =
      std::function<void(net::NodeId src, ByteSpan frame)>;
  void SetControlHandler(ControlHandler handler);

  /// Invoked from reactor-thread context when a peer-process link fails
  /// mid-run (EOF, read or write error outside the shutdown window),
  /// attributed to that process's primary rank. Fires at most once per
  /// peer. Without a handler a mid-run link failure is fatal (the v5
  /// behavior); with one, the process keeps running so the coordinator
  /// can observe, report, and unwind deliberately. Set before Start().
  using PeerDownHandler =
      std::function<void(net::NodeId primary, const std::string& why)>;
  void SetPeerDownHandler(PeerDownHandler handler);

  /// Snapshots every remote link's health counters (ascending primary
  /// rank; empty when the whole mesh is one process). Safe to call from
  /// any thread while the transport runs.
  std::vector<LinkStats> LinkSnapshots();

  std::uint64_t heartbeat_interval_ns() const {
    return static_cast<std::uint64_t>(options_.heartbeat_interval_ms) *
           1000000ull;
  }

  /// Binds/adopts the listener, starts the reactor pool and the mesh
  /// connector. Returns immediately; AwaitConnected() blocks for
  /// completion.
  void Start();

  /// Blocks until every peer-process link is handshaken (throws CheckError
  /// on connect failure or timeout). The window scales with the cluster
  /// size — a 128-rank bring-up legitimately takes longer than a 2-rank
  /// one.
  void AwaitConnected();

  /// Enqueues a control frame toward `dst`'s process (FIFO with data
  /// traffic on that connection). `dst` must be remote.
  void SendControl(net::NodeId dst, const Bytes& frame);
  /// One copy per remote *process* (delivered to its primary).
  void BroadcastControl(const Bytes& frame);

  /// Data frames handed to the wire / pushed into a local mailbox off the
  /// wire. Local cross-rank sends never touch these.
  std::uint64_t wire_sent() const {
    return wire_sent_.load(std::memory_order_acquire);
  }
  std::uint64_t wire_received() const {
    return wire_received_.load(std::memory_order_acquire);
  }

  /// Wire-write accounting for this process (data + control frames):
  /// successful socket writes issued, total frames enqueued toward the
  /// wire, and how many of those frames rode inside a Batch.
  /// frames_enqueued - frames_coalesced + (batches) == socket_writes; a
  /// coalesced share > 0 is the syscall saving the batching exists for.
  std::uint64_t socket_writes() const {
    return socket_writes_.load(std::memory_order_acquire);
  }
  std::uint64_t frames_enqueued() const {
    return frames_enqueued_.load(std::memory_order_acquire);
  }
  std::uint64_t frames_coalesced() const {
    return frames_coalesced_.load(std::memory_order_acquire);
  }

  /// Hot-path accounting (process totals since transport start; the
  /// measured-window versions travel through AugmentSnapshot).
  /// delta_hits: data frames that left as kDelta; delta_misses: eligible
  /// frames sent full (cache miss, size change, or diff not smaller);
  /// delta_bytes_saved: wire bytes avoided by the hits; shm_msgs: data
  /// frames that took a shared-memory ring instead of TCP.
  std::uint64_t delta_hits() const {
    return delta_hits_.load(std::memory_order_acquire);
  }
  std::uint64_t delta_misses() const {
    return delta_misses_.load(std::memory_order_acquire);
  }
  std::uint64_t delta_bytes_saved() const {
    return delta_bytes_saved_.load(std::memory_order_acquire);
  }
  std::uint64_t shm_msgs() const {
    return shm_msgs_.load(std::memory_order_acquire);
  }
  /// True when this process created a shm segment (at least one link may
  /// negotiate rings).
  bool shm_active() const { return shm_ != nullptr; }

  /// Marks the run as ending: from now on a peer EOF is a normal goodbye,
  /// not a died-peer failure. Call when the shutdown barrier starts.
  void BeginShutdown() {
    shutting_down_.store(true, std::memory_order_release);
  }

  /// Flushes and half-closes every peer link, closes the local mailboxes,
  /// and joins the reactor pool. Requires every process to reach its own
  /// Stop() (the coordinator's shutdown barrier guarantees it). Idempotent.
  void Stop();

  // ---- net::Transport ----

  std::size_t node_count() const override { return options_.peers.size(); }

  void SetHandler(net::NodeId node, Handler handler) override {
    CheckLocal(node);
    handlers_[node - options_.rank] = std::move(handler);
  }

  void Send(net::NodeId src, net::NodeId dst, stats::MsgCat cat,
            Buf payload) override;

  /// Wall-clock nanoseconds since transport construction.
  sim::Time Now() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Only the local ranks' recorders accumulate anything; remote slots are
  /// zero-filled placeholders so base-class Totals()/ResetStats() see a
  /// full table (cluster-wide totals come from the coordinator's gather).
  stats::Recorder& RecorderFor(net::NodeId node) override {
    HMDSM_CHECK(node < recorders_.size());
    return recorders_[node];
  }
  const stats::Recorder& RecorderFor(net::NodeId node) const override {
    HMDSM_CHECK(node < recorders_.size());
    return recorders_[node];
  }

  /// Re-baselines the wire counters along with the recorders, so the
  /// snapshot fold below reports the measured window only. The atomics
  /// themselves stay monotonic — quiescence probes need absolute values.
  void ResetStats() override;

  /// Folds this process's wire-counter window and the reactor's write-
  /// latency histogram into a recorder snapshot, so the coordinator's
  /// gather carries them and cluster totals come out of Merge. Folded for
  /// the primary rank only — the counters are process-level, and a
  /// multi-rank Totals() must not double-count them.
  void AugmentSnapshot(net::NodeId node, stats::Recorder& into) const override;

  // ---- runtime::MailboxTransport ----

  bool WaitPop(net::NodeId node, net::Packet& out) override {
    CheckLocal(node);
    return mailboxes_[node - options_.rank].WaitPop(out);
  }

  void Dispatch(net::Packet&& packet) override;

  void CloseAll() override {
    for (runtime::Channel& m : mailboxes_) m.Close();
  }

  std::uint64_t enqueued() const override {
    return enqueued_.load(std::memory_order_acquire);
  }
  std::uint64_t dispatched() const override {
    return dispatched_.load(std::memory_order_acquire);
  }

 private:
  /// One peer-process link: the socket, its frame queue, and the reactor
  /// state machines. Fields below the marker are touched only by the
  /// owning I/O thread (single-threaded by construction — a peer belongs
  /// to exactly one reactor thread).
  struct Peer {
    Fd fd;
    std::size_t io_thread = 0;
    std::atomic<bool> registered{false};    // epoll adoption complete
    std::atomic<bool> kick_pending{false};  // queued frames await a flush
    /// Link failed mid-run: enqueues toward it are dropped, not queued.
    std::atomic<bool> down{false};
    // Link telemetry (read by LinkSnapshots from arbitrary threads).
    std::atomic<std::int64_t> last_heard_ns{-1};
    std::atomic<std::int64_t> last_ack_ns{-1};
    std::atomic<std::uint64_t> hb_sent{0};
    std::atomic<std::uint64_t> hb_acked{0};
    std::atomic<std::uint64_t> eagain{0};
    std::atomic<std::uint64_t> epollout_arms{0};
    std::atomic<std::uint64_t> kicks{0};
    std::atomic<std::uint64_t> frames_dropped{0};
    /// Both ends of this link advertised wire deltas. Written once by the
    /// connector before `registered` flips (and before the HelloAck leaves
    /// on the accept side), so every thread that can observe a data frame
    /// for this link already sees it set — reactor thread via the epoll
    /// ADD, shm reader via the registered gate.
    std::atomic<bool> delta_on{false};
    std::atomic<std::uint64_t> shm_msgs_sent{0};
    mutable std::mutex mu;    // guards queue + queue_bytes + closed + rtt
                              // + tx_cache + shm_tx
    std::deque<Bytes> queue;  // encoded frames awaiting the reactor
    std::size_t queue_bytes = 0;  // payload bytes queued (backlog gauge)
    stats::Histogram rtt;     // heartbeat round-trips
    bool closed = false;      // no further enqueues
    bool connected = false;   // guarded by mesh_mu_
    /// Send-side delta cache. Mutated under `mu`, in the same critical
    /// section as the enqueue/ring-write — cache order and channel order
    /// must be the same order (the lockstep invariant, netio/delta.h).
    DeltaCache tx_cache;
    /// Data frames go via the shm ring (negotiated, attach succeeded, and
    /// no data frame was already queued on TCP at attach time).
    bool shm_tx = false;
    // ---- receive-path state, owned by this link's single rx thread (the
    // owning reactor thread, or the shm reader for ring frames — the kData/
    // kDelta path is exactly one of the two by negotiation) ----
    DeltaCache rx_cache;
    // ---- owning-I/O-thread state ----
    Byte head[4] = {};          // length-prefix accumulator
    std::size_t head_got = 0;   // 4 == currently filling in_box
    BufferPool::Box in_box;     // pooled exact-size receive buffer
    std::size_t in_got = 0;
    std::vector<Bytes> out_segs;  // in-flight wire image (scatter segments)
    std::size_t out_seg = 0;      // flush cursor: segment index…
    std::size_t out_off = 0;      // …and byte offset within it
    std::size_t out_frames = 0;   // frames the in-flight image carries
    bool out_batched = false;
    bool out_active = false;
    std::uint32_t armed = 0;   // epoll event mask currently registered
    bool in_epoll = false;
    bool read_open = true;     // false after a shutdown-phase EOF
    bool dead = false;         // link retired (mid-run failure or teardown)
    std::uint64_t hb_seq = 0;  // heartbeat sequence toward this peer
  };

  /// One reactor thread: its epoll instance, an eventfd enqueuers use to
  /// wake it, the heartbeat timerfd, and the peer groups it owns.
  struct IoThread {
    Fd epoll;
    Fd wake;
    Fd timer;  // periodic heartbeat tick (absent when heartbeats are off)
    std::thread th;
    std::vector<std::size_t> owned;
  };

  std::size_t GroupOf(net::NodeId node) const {
    return node / options_.ranks_per_proc;
  }
  net::NodeId PrimaryOf(std::size_t group) const {
    return static_cast<net::NodeId>(group * options_.ranks_per_proc);
  }
  void CheckLocal(net::NodeId node) const {
    HMDSM_CHECK_MSG(is_local(node), "process with primary rank "
                                        << options_.rank << " does not host "
                                        << "node " << node);
  }

  void ConnectorMain();
  /// Validates a fresh connection's handshake and adopts it into the
  /// owning reactor thread's epoll set. `delta_on` is the negotiated AND of
  /// both ends' wire-delta flags; `peer_shm_name` is non-empty when shm
  /// negotiation succeeded (both flags + same host) and names the peer's
  /// segment to attach for our writes toward it.
  void RegisterPeer(std::size_t group, Fd fd, bool delta_on,
                    const std::string& peer_shm_name);
  /// This process's handshake flags word (kHelloFlag*).
  std::uint32_t HelloFlags() const;
  void IoLoop(std::size_t ti);
  /// Teardown flush: drains every owned queue (EPOLLOUT-paced), then
  /// half-closes each link.
  void DrainWrites(IoThread& t);
  /// Nonblocking read pump: header/frame state machine until EAGAIN.
  void HandleReadable(IoThread& t, std::size_t group);
  /// Drains the peer's queue through writev until empty or EAGAIN.
  void FlushPeer(IoThread& t, std::size_t group);
  /// Coalesces the next queue prefix into a wire image (out_segs); false
  /// when the queue is empty.
  bool BuildNextWrite(Peer& peer);
  /// Reconciles the peer's epoll registration with read_open/want-write.
  void UpdateEpoll(IoThread& t, Peer& peer, std::size_t group,
                   bool want_write);
  /// Routes one received frame: data to the destination rank's mailbox
  /// (payload aliased, not copied), batches split and routed inner-frame
  /// by inner-frame (`allow_batch` is false for those — a batch may not
  /// nest), control to the registered handler as the peer's primary rank.
  /// Dies on malformed or misrouted input.
  void HandleFrame(std::size_t group, const Buf& frame, bool allow_batch);
  /// Heartbeat tick: drains the timerfd and probes every owned live peer.
  void OnTimer(IoThread& t);
  /// Retires a mid-run-failed link: drops its queue, leaves the epoll set,
  /// and fires the peer-down handler (once). Reactor-thread context only.
  void MarkPeerDown(IoThread& t, std::size_t group, const std::string& why);
  /// Remote data-frame send: encodes under the link lock (applying the
  /// delta decision against tx_cache in channel order) and hands the frame
  /// to the shm ring or the TCP queue.
  void SendData(net::NodeId dst, DataFrame data);
  /// The delta decision (under peer.mu): returns the encoded kDelta or
  /// kData frame and mutates tx_cache with the matching lockstep op.
  Bytes EncodeDataLocked(Peer& peer, DataFrame data);
  /// Receive-side mirror of the lockstep op for a full data frame.
  void NoteRxData(Peer& peer, const DataFrame& data);
  /// Reconstructs a kDelta frame against rx_cache and delivers it; any
  /// base mismatch or malformed diff is a protocol violation (Die).
  void HandleDelta(std::size_t group, const Buf& frame);
  void EnqueueFrame(net::NodeId dst, Bytes frame);
  /// Forgiving enqueue for health-plane traffic: drops the frame (and
  /// counts it) when the link is down or closing instead of aborting —
  /// heartbeats race shutdown by design.
  bool TryEnqueueFrame(net::NodeId dst, Bytes frame);
  /// Wakes `group`'s reactor thread to flush its queue (deduplicated per
  /// peer via kick_pending).
  void KickPeer(std::size_t group);
  /// Records a mesh bring-up failure and wakes AwaitConnected.
  void FailConnect(const std::string& why);
  /// Unrecoverable protocol violation or peer death mid-run: this process
  /// cannot continue (its nodes' state is now unreachable by the cluster).
  [[noreturn]] void Die(const std::string& why) const;

  SocketTransportOptions options_;
  std::size_t group_ = 0;        // this process's index in the mesh
  std::size_t group_count_ = 1;  // processes in the mesh
  std::vector<net::NodeId> local_ranks_;
  std::deque<runtime::Channel> mailboxes_;  // one per local rank
  std::vector<Handler> handlers_;           // one per local rank
  ControlHandler control_handler_;
  PeerDownHandler peer_down_handler_;
  std::deque<stats::Recorder> recorders_;  // local ranks real, others zero
  std::deque<Peer> peers_;    // indexed by group; [group_] unused
  std::deque<IoThread> io_;   // the reactor pool
  Fd listener_;
  std::thread connector_;

  std::mutex mesh_mu_;  // connection bookkeeping
  std::condition_variable mesh_cv_;
  std::size_t connected_count_ = 0;
  std::string connect_error_;

  std::atomic<bool> shutting_down_{false};
  std::atomic<bool> stop_io_{false};  // reactor pool: drain and exit
  bool started_ = false;
  bool stopped_ = false;

  std::atomic<std::uint64_t> wire_sent_{0};
  std::atomic<std::uint64_t> wire_received_{0};
  std::atomic<std::uint64_t> enqueued_{0};
  std::atomic<std::uint64_t> dispatched_{0};
  std::atomic<std::uint64_t> socket_writes_{0};
  std::atomic<std::uint64_t> frames_enqueued_{0};
  std::atomic<std::uint64_t> frames_coalesced_{0};
  std::atomic<std::uint64_t> delta_hits_{0};
  std::atomic<std::uint64_t> delta_misses_{0};
  std::atomic<std::uint64_t> delta_bytes_saved_{0};
  std::atomic<std::uint64_t> shm_msgs_{0};
  // Measured-window baselines (ResetStats snapshots the atomics here).
  std::atomic<std::uint64_t> socket_writes_base_{0};
  std::atomic<std::uint64_t> frames_enqueued_base_{0};
  std::atomic<std::uint64_t> frames_coalesced_base_{0};
  std::atomic<std::uint64_t> delta_hits_base_{0};
  std::atomic<std::uint64_t> delta_misses_base_{0};
  std::atomic<std::uint64_t> delta_bytes_saved_base_{0};
  std::atomic<std::uint64_t> shm_msgs_base_{0};
  std::atomic<std::uint64_t> rx_buffer_allocs_base_{0};
  // Per-local-rank baselines (atomics: live stats polling may snapshot
  // concurrently with the quiescent-point reset).
  std::unique_ptr<std::atomic<std::uint64_t>[]> mailbox_overflow_base_;
  // Pooled receive buffers, shared by the reactor read path and the shm
  // reader (BufferPool is thread-safe; buffers recycle on payload release).
  BufferPool rx_pool_;
  // This process's shm segment (null: disabled, setup failed, or single-
  // process mesh). Created in Start(), before the connector can handshake.
  std::unique_ptr<ShmTransport> shm_;
  std::uint64_t host_id_ = 0;
  // Wire-write syscall latency, recorded by reactor threads (which never
  // hold an agent lock) — hence its own mutex, merged at snapshot time.
  mutable std::mutex write_lat_mu_;
  stats::Histogram write_latency_;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace hmdsm::netio
