// netio::SocketTransport — the multi-process TCP implementation of the
// transport seam. Each cluster node is its own OS process ("rank"); this
// object is one rank's view of the mesh.
//
// Mesh topology: one TCP connection per unordered rank pair. Low ranks
// listen, high ranks dial (rank 0 only listens, rank N-1 only dials); the
// dialer retries until the listener is up and both sides handshake with a
// Hello/HelloAck carrying the protocol version, node id, and cluster size.
// A version or identity mismatch refuses the connection loudly.
//
// Data path and the delivery contract (see net/transport.h):
//   * Send() is always called under the local node's agent lock, so sends
//     are serialized at the source; each remote send is framed and handed
//     to the destination peer's writer queue (drained by one writer thread
//     per peer), and TCP preserves order per connection — together that is
//     per-sender FIFO.
//   * Writer queues batch adaptively: a writer that wakes to a single
//     queued frame writes it immediately (an idle link adds no latency),
//     but a backlog — senders outrunning the wire — is coalesced into one
//     Batch frame per write up to a size/count budget, amortizing the
//     syscall and wire framing across many small protocol messages.
//     Batching preserves queue order exactly, so FIFO survives.
//   * One reader thread per peer decodes frames defensively (peer input is
//     untrusted) and pushes data packets into the local node's mailbox —
//     the same mailbox self-sends use, so delivery order is whatever the
//     single dispatcher pops, serialized per destination, and a self-send
//     is never re-entrant. Payloads are aliased views of the received wire
//     frame (util::Buf), never re-copied between the wire and the mailbox.
//   * Statistics live in the local rank's recorder only (send half at
//     Send, receive half at Dispatch); cluster totals are gathered over
//     control frames by the netio::Coordinator at the end of a run.
//
// Control frames (thread start/done, quiescence probes, stats, shutdown)
// share the per-peer writer queues — so a control frame from rank A to
// rank B is FIFO-ordered against A's data traffic to B, which the
// coordinator's reset/start sequencing relies on — and are routed to the
// registered control handler from reader-thread context.
//
// The wire_sent/wire_received counters (data frames only) feed the
// distributed quiescence detection: this process alone cannot know whether
// the cluster is idle, only the coordinator's cross-rank probe can.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/netio/frame.h"
#include "src/netio/socket.h"
#include "src/runtime/channel.h"
#include "src/runtime/mailbox_transport.h"

namespace hmdsm::netio {

struct SocketTransportOptions {
  /// This process's node id, in [0, peers.size()).
  net::NodeId rank = 0;
  /// One "host:port" endpoint per rank (index = rank). Every process gets
  /// the identical list.
  std::vector<std::string> peers;
  /// Pre-bound listening socket to adopt (the self-fork launcher binds
  /// ephemeral ports in the parent so children cannot collide); -1 binds
  /// peers[rank] instead.
  int listen_fd = -1;
  /// How long dialers retry while the mesh comes up.
  int connect_timeout_ms = 30000;
  /// Frames above this are a protocol violation (checked pre-allocation).
  std::uint32_t max_frame_bytes = kMaxFrameBytes;
  /// Adaptive frame batching: a writer thread that finds more than one
  /// frame queued coalesces up to the budgets below into one Batch frame —
  /// one wire write — and flushes immediately (no batching, no added
  /// latency) whenever the queue drains to a single frame. Off: one write
  /// per frame, the v1 behavior.
  bool batch_frames = true;
  std::size_t max_batch_frames = 64;
  std::size_t max_batch_bytes = 64 * 1024;
  /// Latency histograms: stamp packets entering the local mailbox (dwell)
  /// and time each wire write(2) (syscall latency). The cost is one clock
  /// read per packet / two per write; off leaves the hot path untouched.
  bool measure_latency = true;
};

class SocketTransport final : public runtime::MailboxTransport {
 public:
  explicit SocketTransport(SocketTransportOptions options);
  ~SocketTransport() override;
  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  net::NodeId rank() const { return options_.rank; }

  /// Control frames arrive here from reader-thread context (serialized per
  /// peer, concurrent across peers). Set before Start().
  using ControlHandler =
      std::function<void(net::NodeId src, ByteSpan frame)>;
  void SetControlHandler(ControlHandler handler);

  /// Binds/adopts the listener and starts the mesh connector. Returns
  /// immediately; AwaitConnected() blocks for completion.
  void Start();

  /// Blocks until every peer link is handshaken (throws CheckError on
  /// connect failure or timeout).
  void AwaitConnected();

  /// Enqueues a control frame to `dst` (FIFO with data traffic).
  void SendControl(net::NodeId dst, const Bytes& frame);
  void BroadcastControl(const Bytes& frame);

  /// Data frames handed to the wire / pushed into the local mailbox.
  std::uint64_t wire_sent() const {
    return wire_sent_.load(std::memory_order_acquire);
  }
  std::uint64_t wire_received() const {
    return wire_received_.load(std::memory_order_acquire);
  }

  /// Wire-write accounting for this rank (data + control frames): actual
  /// socket writes issued, total frames enqueued toward the wire, and how
  /// many of those frames rode inside a Batch. frames_enqueued -
  /// frames_coalesced + (batches) == socket_writes; a coalesced share > 0
  /// is the syscall saving the batching exists for.
  std::uint64_t socket_writes() const {
    return socket_writes_.load(std::memory_order_acquire);
  }
  std::uint64_t frames_enqueued() const {
    return frames_enqueued_.load(std::memory_order_acquire);
  }
  std::uint64_t frames_coalesced() const {
    return frames_coalesced_.load(std::memory_order_acquire);
  }

  /// Marks the run as ending: from now on a peer EOF is a normal goodbye,
  /// not a died-peer failure. Call when the shutdown barrier starts.
  void BeginShutdown() {
    shutting_down_.store(true, std::memory_order_release);
  }

  /// Flushes and half-closes every peer link, closes the local mailbox,
  /// and joins all I/O threads. Requires every rank to reach its own
  /// Stop() (the coordinator's shutdown barrier guarantees it). Idempotent.
  void Stop();

  // ---- net::Transport ----

  std::size_t node_count() const override { return options_.peers.size(); }

  void SetHandler(net::NodeId node, Handler handler) override {
    HMDSM_CHECK_MSG(node == options_.rank,
                    "rank " << options_.rank << " cannot host node " << node);
    handler_ = std::move(handler);
  }

  void Send(net::NodeId src, net::NodeId dst, stats::MsgCat cat,
            Buf payload) override;

  /// Wall-clock nanoseconds since transport construction.
  sim::Time Now() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Only the local rank's recorder accumulates anything; remote slots are
  /// zero-filled placeholders so base-class Totals()/ResetStats() see a
  /// full table (cluster-wide totals come from the coordinator's gather).
  stats::Recorder& RecorderFor(net::NodeId node) override {
    HMDSM_CHECK(node < recorders_.size());
    return recorders_[node];
  }
  const stats::Recorder& RecorderFor(net::NodeId node) const override {
    HMDSM_CHECK(node < recorders_.size());
    return recorders_[node];
  }

  /// Re-baselines the wire counters along with the recorders, so the
  /// snapshot fold below reports the measured window only. The atomics
  /// themselves stay monotonic — quiescence probes need absolute values.
  void ResetStats() override;

  /// Folds this rank's wire-counter window and the writer threads' write-
  /// latency histogram into a recorder snapshot, so the coordinator's
  /// gather carries them and cluster totals come out of Merge.
  void AugmentSnapshot(net::NodeId node, stats::Recorder& into) const override;

  // ---- runtime::MailboxTransport ----

  bool WaitPop(net::NodeId node, net::Packet& out) override {
    HMDSM_CHECK(node == options_.rank);
    return mailbox_.WaitPop(out);
  }

  void Dispatch(net::Packet&& packet) override;

  void CloseAll() override { mailbox_.Close(); }

  std::uint64_t enqueued() const override {
    return enqueued_.load(std::memory_order_acquire);
  }
  std::uint64_t dispatched() const override {
    return dispatched_.load(std::memory_order_acquire);
  }

 private:
  /// One peer link: the socket plus its writer queue and I/O threads.
  struct Peer {
    Fd fd;
    std::thread reader;
    std::thread writer;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Bytes> queue;  // frames awaiting the writer thread
    bool closed = false;      // no further enqueues; writer drains and exits
    bool connected = false;   // guarded by mesh_mu_
  };

  void ConnectorMain();
  /// Validates a fresh connection's handshake and starts its I/O threads.
  void RegisterPeer(net::NodeId id, Fd fd);
  void ReaderLoop(net::NodeId id);
  /// Routes one received frame: data to the mailbox (payload aliased, not
  /// copied), batches split and routed inner-frame by inner-frame
  /// (`allow_batch` is false for those — a batch may not nest), control to
  /// the registered handler. Dies on malformed or misrouted input.
  void HandleFrame(net::NodeId id, const Buf& frame, bool allow_batch);
  void WriterLoop(net::NodeId id);
  void EnqueueFrame(net::NodeId dst, Bytes frame);
  /// Records a mesh bring-up failure and wakes AwaitConnected.
  void FailConnect(const std::string& why);
  /// Unrecoverable protocol violation or peer death mid-run: this process
  /// cannot continue (its node's state is now unreachable by the cluster).
  [[noreturn]] void Die(const std::string& why) const;

  SocketTransportOptions options_;
  runtime::Channel mailbox_;               // the local node's mailbox
  Handler handler_;                        // local node's delivery callback
  ControlHandler control_handler_;
  std::deque<stats::Recorder> recorders_;  // [rank] real, others placeholder
  std::deque<Peer> peers_;                 // indexed by rank; [rank] unused
  Fd listener_;
  std::thread connector_;

  std::mutex mesh_mu_;                     // connection bookkeeping
  std::condition_variable mesh_cv_;
  std::size_t connected_count_ = 0;
  std::string connect_error_;

  std::atomic<bool> shutting_down_{false};
  bool started_ = false;
  bool stopped_ = false;

  std::atomic<std::uint64_t> wire_sent_{0};
  std::atomic<std::uint64_t> wire_received_{0};
  std::atomic<std::uint64_t> enqueued_{0};
  std::atomic<std::uint64_t> dispatched_{0};
  std::atomic<std::uint64_t> socket_writes_{0};
  std::atomic<std::uint64_t> frames_enqueued_{0};
  std::atomic<std::uint64_t> frames_coalesced_{0};
  // Measured-window baselines (ResetStats snapshots the atomics here).
  std::atomic<std::uint64_t> socket_writes_base_{0};
  std::atomic<std::uint64_t> frames_enqueued_base_{0};
  std::atomic<std::uint64_t> frames_coalesced_base_{0};
  // Wire-write syscall latency, recorded by writer threads (which never
  // hold the agent lock) — hence its own mutex, merged at snapshot time.
  mutable std::mutex write_lat_mu_;
  stats::Histogram write_latency_;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace hmdsm::netio
