#include "src/netio/coordinator.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>
#include <utility>

#include "src/util/json.h"

namespace hmdsm::netio {

namespace {

/// Bounded control waits are not latency-sensitive, only hang-sensitive:
/// generous enough for a loaded CI machine, small enough that a wedged
/// cluster fails the run instead of idling forever. Only applied to waits
/// whose duration is bounded by the control protocol itself (probe
/// replies, acks); waits that track the application's own runtime —
/// thread start/completion, the end-of-run gate — are unbounded, with a
/// died peer detected by the transport's reader loops instead.
constexpr auto kControlTimeout = std::chrono::seconds(120);

}  // namespace

Coordinator::Coordinator(SocketTransport& transport,
                         runtime::Runtime& runtime, net::NodeId lead)
    : transport_(transport), runtime_(runtime), lead_(lead) {
  HMDSM_CHECK(lead_ < transport_.node_count());
  transport_.SetControlHandler(
      [this](net::NodeId src, ByteSpan frame) { OnControlFrame(src, frame); });
}

Coordinator::~Coordinator() { StopPolling(); }

template <typename Pred>
void Coordinator::WaitFor(std::unique_lock<std::mutex>& lock, Pred pred,
                          const char* what) {
  // The base allowance plus a per-rank term: a 128-rank fan-in has more
  // replies to collect (and more processes contending for the machine)
  // than a 2-rank one, and must not time out just for being big.
  const auto timeout =
      kControlTimeout +
      std::chrono::milliseconds(250 * transport_.node_count());
  HMDSM_CHECK_MSG(cv_.wait_for(lock, timeout, pred),
                  "control-plane timeout waiting for " << what);
}

void Coordinator::OnControlFrame(net::NodeId src, ByteSpan frame) {
  FrameType type;
  std::string error;
  HMDSM_CHECK(PeekType(frame, &type));  // transport routed it, so it peeked
  switch (type) {
    case FrameType::kStartThread: {
      StartThreadFrame f;
      if (!TryDecode(frame, &f, &error)) break;
      std::lock_guard lock(mu_);
      started_.insert(f.seq);
      cv_.notify_all();
      return;
    }
    case FrameType::kThreadDone: {
      ThreadDoneFrame f;
      if (!TryDecode(frame, &f, &error)) break;
      std::lock_guard lock(mu_);
      done_[f.seq] = RemoteDone{std::move(f.error), std::move(f.result)};
      cv_.notify_all();
      return;
    }
    case FrameType::kQuiesceProbe: {
      QuiesceProbeFrame f;
      if (!TryDecode(frame, &f, &error)) break;
      // Replied straight from reader context: counters are atomics.
      transport_.SendControl(
          src, Encode(QuiesceReplyFrame{
                   f.round, transport_.wire_sent(), transport_.wire_received(),
                   transport_.enqueued(), transport_.dispatched()}));
      return;
    }
    case FrameType::kQuiesceReply: {
      QuiesceReplyFrame f;
      if (!TryDecode(frame, &f, &error)) break;
      std::lock_guard lock(mu_);
      if (f.round == quiesce_round_) quiesce_replies_[src] = f;
      cv_.notify_all();
      return;
    }
    case FrameType::kStatsRequest: {
      StatsRequestFrame f;
      if (!TryDecode(frame, &f, &error)) break;
      // Close the final (partial) sampling window before snapshotting, so
      // the gathered series covers the run right up to the gather.
      runtime_.SampleTimeseries();
      // All locally hosted ranks merged (Totals takes each agent lock, so
      // it is consistent even against a straggling handler — the lead
      // quiesces first anyway).
      StatsReplyFrame reply;
      reply.tag = f.tag;
      reply.node = transport_.rank();
      reply.recorder = runtime_.Totals();
      transport_.SendControl(src, Encode(reply));
      return;
    }
    case FrameType::kStatsReply: {
      StatsReplyFrame f;
      if (!TryDecode(frame, &f, &error)) break;
      std::lock_guard lock(mu_);
      if (f.tag == stats_tag_) stats_replies_[src] = std::move(f.recorder);
      cv_.notify_all();
      return;
    }
    case FrameType::kResetStats: {
      ResetStatsFrame f;
      if (!TryDecode(frame, &f, &error)) break;
      // The lead established global quiescence before broadcasting, so the
      // local reset (quiesce + zero + epoch) completes immediately and
      // races nothing.
      runtime_.ResetMeasurement();
      transport_.SendControl(src, Encode(ResetAckFrame{f.tag}));
      return;
    }
    case FrameType::kResetAck: {
      ResetAckFrame f;
      if (!TryDecode(frame, &f, &error)) break;
      std::lock_guard lock(mu_);
      if (f.tag == reset_tag_) ++reset_acks_;
      cv_.notify_all();
      return;
    }
    case FrameType::kShutdown: {
      ShutdownFrame f;
      if (!TryDecode(frame, &f, &error)) break;
      transport_.BeginShutdown();  // EOFs are goodbyes from here on
      std::lock_guard lock(mu_);
      shutdown_received_ = true;
      abort_received_ = f.abort;
      cv_.notify_all();
      return;
    }
    case FrameType::kShutdownAck: {
      ShutdownAckFrame f;
      if (!TryDecode(frame, &f, &error)) break;
      std::lock_guard lock(mu_);
      ++shutdown_acks_;
      cv_.notify_all();
      return;
    }
    case FrameType::kShutdownDone: {
      ShutdownDoneFrame f;
      if (!TryDecode(frame, &f, &error)) break;
      std::lock_guard lock(mu_);
      shutdown_done_ = true;
      cv_.notify_all();
      return;
    }
    case FrameType::kStatsPoll: {
      StatsPollFrame f;
      if (!TryDecode(frame, &f, &error)) break;
      // Best-effort mid-run snapshot, answered from reader context like a
      // quiescence probe (the snapshot briefly takes the agent lock). The
      // poll doubles as this rank's time-series clock: close one counter
      // window first so the snapshot carries the fresh sample to the lead.
      runtime_.SampleTimeseries();
      StatsPollReplyFrame reply;
      reply.seq = f.seq;
      reply.node = transport_.rank();
      reply.now_ns = static_cast<std::uint64_t>(transport_.Now());
      reply.recorder = runtime_.Totals();  // all locally hosted ranks
      transport_.SendControl(src, Encode(reply));
      return;
    }
    case FrameType::kStatsPollReply: {
      StatsPollReplyFrame f;
      if (!TryDecode(frame, &f, &error)) break;
      std::lock_guard lock(mu_);
      // Stale-seq replies (a slow rank answering an old sample) are simply
      // dropped — the poll loop already moved on.
      if (f.seq == poll_seq_) poll_replies_[src] = std::move(f);
      cv_.notify_all();
      return;
    }
    default:
      error = "unexpected frame type " +
              std::to_string(static_cast<int>(type));
      break;
  }
  HMDSM_CHECK_MSG(false, "control frame from rank " << src << ": " << error);
}

// ---------------------------------------------------------------------------
// Lead side
// ---------------------------------------------------------------------------

void Coordinator::StartRemoteThread(net::NodeId host, std::uint64_t seq) {
  HMDSM_CHECK(is_lead());
  transport_.SendControl(host, Encode(StartThreadFrame{seq}));
}

Coordinator::RemoteDone Coordinator::AwaitThreadDone(std::uint64_t seq) {
  HMDSM_CHECK(is_lead());
  std::unique_lock lock(mu_);
  // Unbounded: a remote body legitimately runs as long as the workload.
  cv_.wait(lock, [&] { return done_.contains(seq); });
  return done_.at(seq);
}

void Coordinator::GlobalQuiesce() {
  HMDSM_CHECK(is_lead());
  // One reply per *process*: the wire/mailbox counters are process-level,
  // and that is exactly the granularity quiescence needs.
  const std::size_t others = transport_.process_count() - 1;
  std::vector<QuiesceReplyFrame> previous;
  for (;;) {
    runtime_.AwaitQuiescence();  // local first: cheap and usually sufficient
    std::vector<QuiesceReplyFrame> round(transport_.node_count());
    {
      std::unique_lock lock(mu_);
      const std::uint64_t round_id = ++quiesce_round_;
      quiesce_replies_.clear();
      transport_.BroadcastControl(Encode(QuiesceProbeFrame{round_id}));
      WaitFor(lock, [&] { return quiesce_replies_.size() == others; },
              "quiescence probe replies");
      for (const auto& [rank, reply] : quiesce_replies_) round[rank] = reply;
    }
    round[transport_.rank()] = QuiesceReplyFrame{
        0, transport_.wire_sent(), transport_.wire_received(),
        transport_.enqueued(), transport_.dispatched()};

    std::uint64_t sent = 0, received = 0;
    bool locally_idle = true;
    for (const QuiesceReplyFrame& r : round) {
      sent += r.wire_sent;
      received += r.wire_received;
      locally_idle = locally_idle && r.enqueued == r.dispatched;
    }
    const auto same = [](const QuiesceReplyFrame& a,
                         const QuiesceReplyFrame& b) {
      return a.wire_sent == b.wire_sent &&
             a.wire_received == b.wire_received && a.enqueued == b.enqueued &&
             a.dispatched == b.dispatched;
    };
    bool stable = !previous.empty();
    for (std::size_t i = 0; stable && i < round.size(); ++i)
      stable = same(round[i], previous[i]);
    // Counters are monotone: identical counters across two rounds with
    // matched sums and idle mailboxes means nothing moved in between.
    if (sent == received && locally_idle && stable) return;
    previous = std::move(round);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

stats::Recorder Coordinator::GatherStats() {
  HMDSM_CHECK(is_lead());
  // One StatsReply per remote *process*, each already a merge of all the
  // ranks that process hosts.
  const std::size_t others = transport_.process_count() - 1;
  stats::Recorder total;
  total.SetNodeCount(transport_.node_count());
  std::unique_lock lock(mu_);
  const std::uint64_t tag = ++stats_tag_;
  stats_replies_.clear();
  transport_.BroadcastControl(Encode(StatsRequestFrame{tag}));
  WaitFor(lock, [&] { return stats_replies_.size() == others; },
          "stats replies");
  for (const auto& [rank, recorder] : stats_replies_) total.Merge(recorder);
  lock.unlock();
  // Same final-window close for the lead's own series as the StatsRequest
  // handler performs on every other process.
  runtime_.SampleTimeseries();
  total.Merge(runtime_.Totals());
  return total;
}

void Coordinator::GlobalResetStats() {
  HMDSM_CHECK(is_lead());
  // Quiesce first so no in-flight message straddles the reset; the acks
  // below guarantee every rank reset before the lead proceeds (and the
  // per-peer FIFO queues order each rank's reset before any later
  // lead-caused traffic) — so measured windows cover identical traffic on
  // every rank.
  GlobalQuiesce();
  const std::size_t others = transport_.process_count() - 1;
  std::unique_lock lock(mu_);
  const std::uint64_t tag = ++reset_tag_;
  reset_acks_ = 0;
  transport_.BroadcastControl(Encode(ResetStatsFrame{tag}));
  WaitFor(lock, [&] { return reset_acks_ == others; }, "reset acks");
  lock.unlock();
  runtime_.ResetMeasurement();
}

void Coordinator::StartPolling(double interval_s, std::string poll_out) {
  HMDSM_CHECK(is_lead());
  if (interval_s <= 0 || transport_.node_count() < 2) return;
  HMDSM_CHECK_MSG(!poll_thread_.joinable(), "polling already started");
  {
    std::lock_guard lock(mu_);
    poll_stop_ = false;
    poll_out_ = std::move(poll_out);
    poll_log_.clear();
  }
  poll_thread_ = std::thread([this, interval_s] { PollLoop(interval_s); });
}

void Coordinator::StopPolling() {
  if (!poll_thread_.joinable()) return;
  {
    std::lock_guard lock(mu_);
    poll_stop_ = true;
  }
  cv_.notify_all();
  poll_thread_.join();
  std::vector<PollSample> log;
  std::string path;
  {
    std::lock_guard lock(mu_);
    log.swap(poll_log_);
    path.swap(poll_out_);
  }
  if (path.empty()) return;
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "poll-out: cannot write %s\n", path.c_str());
    return;
  }
  {
    JsonWriter jw(os);
    jw.BeginArray();
    for (const PollSample& s : log) {
      jw.BeginObject();
      jw.Key("seq").Uint(s.seq);
      jw.Key("t_s").Double(s.t_s);
      jw.Key("msgs").Uint(s.msgs);
      jw.Key("msgs_per_s").Double(s.msgs_per_s);
      jw.Key("faults").Uint(s.faults);
      jw.Key("migrations").Uint(s.migrations);
      jw.Key("answered").Uint(s.answered);
      jw.Key("expected").Uint(s.expected);
      jw.EndObject();
    }
    jw.EndArray();
  }
  os << '\n';
}

double Coordinator::PollRate(std::uint64_t msgs, std::uint64_t prev_msgs,
                             double dt_s, std::size_t answered,
                             std::size_t expected) {
  // Polls are best-effort, so a sample can be missing whole processes: its
  // merged total is then smaller than a complete previous one, and the
  // unsigned delta `msgs - prev_msgs` would wrap to ~1.8e19. Incomplete
  // and backward samples yield no rate rather than an absurd one.
  if (dt_s <= 0 || answered < expected || msgs < prev_msgs) return 0.0;
  return static_cast<double>(msgs - prev_msgs) / dt_s;
}

void Coordinator::PollLoop(double interval_s) {
  const auto interval = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double>(interval_s));
  const std::size_t others = transport_.process_count() - 1;
  std::uint64_t prev_msgs = 0;
  sim::Time prev_ns = 0;
  bool have_prev = false;
  std::unique_lock lock(mu_);
  for (;;) {
    if (cv_.wait_for(lock, interval, [&] { return poll_stop_; })) return;
    poll_replies_.clear();
    const std::uint64_t seq = ++poll_seq_;
    transport_.BroadcastControl(Encode(StatsPollFrame{seq}));
    // Best-effort: a process that cannot answer within a full interval is
    // reported as missing, not waited out — live metrics must never wedge
    // the run they observe.
    cv_.wait_for(lock, interval, [&] {
      return poll_stop_ || poll_replies_.size() == others;
    });
    if (poll_stop_) return;
    stats::Recorder total;
    total.SetNodeCount(transport_.node_count());
    for (const auto& [rank, reply] : poll_replies_) total.Merge(reply.recorder);
    const std::size_t answered = poll_replies_.size();
    lock.unlock();
    // The lead has no poll frame to react to — sample its own window here.
    runtime_.SampleTimeseries();
    total.Merge(runtime_.Totals());
    const sim::Time now = transport_.Now();
    const std::uint64_t msgs = total.TotalMessages();
    const double rate =
        PollRate(msgs, prev_msgs, have_prev ? sim::ToSeconds(now - prev_ns) : 0,
                 answered, others);
    std::fprintf(stderr,
                 "hmdsm poll #%llu: t=%.1fs msgs=%llu (%.0f/s) faults=%llu "
                 "migrations=%llu%s\n",
                 static_cast<unsigned long long>(seq), sim::ToSeconds(now),
                 static_cast<unsigned long long>(msgs), rate,
                 static_cast<unsigned long long>(
                     total.Count(stats::Ev::kFaultIns)),
                 static_cast<unsigned long long>(
                     total.Count(stats::Ev::kMigrations)),
                 answered == others ? "" : " [missing process replies]");
    // The comparison cursor only ever advances onto *complete* samples: a
    // rate against a total that was merely missing replies would read as a
    // spurious burst (or, unsigned, as the underflow PollRate guards).
    if (answered == others) {
      prev_msgs = msgs;
      prev_ns = now;
      have_prev = true;
    }
    lock.lock();
    poll_log_.push_back(PollSample{
        seq, sim::ToSeconds(now), msgs, total.Count(stats::Ev::kFaultIns),
        total.Count(stats::Ev::kMigrations), rate, answered, others});
  }
}

void Coordinator::ShutdownMesh(bool abort) {
  HMDSM_CHECK(is_lead());
  transport_.BeginShutdown();
  const std::size_t others = transport_.process_count() - 1;
  {
    std::unique_lock lock(mu_);
    transport_.BroadcastControl(Encode(ShutdownFrame{abort}));
    WaitFor(lock, [&] { return shutdown_acks_ == others; }, "shutdown acks");
  }
  // Second phase: nobody closes a socket until everyone has acked, so a
  // teardown EOF can only land on a rank that already knows the run ended.
  transport_.BroadcastControl(Encode(ShutdownDoneFrame{}));
}

// ---------------------------------------------------------------------------
// Hosting side
// ---------------------------------------------------------------------------

bool Coordinator::AwaitStart(std::uint64_t seq) {
  std::unique_lock lock(mu_);
  // Unbounded: the lead reaches its Spawn at the workload's own pace.
  cv_.wait(lock, [&] { return started_.contains(seq) || abort_received_; });
  return started_.contains(seq) && !abort_received_;
}

void Coordinator::NotifyThreadDone(std::uint64_t seq,
                                   const std::string& error,
                                   const Bytes& result) {
  HMDSM_CHECK(!is_lead());
  ThreadDoneFrame f;
  f.seq = seq;
  f.error = error;
  f.result = result;
  transport_.SendControl(lead_, Encode(f));
}

bool Coordinator::AwaitShutdown() {
  HMDSM_CHECK(!is_lead());
  std::unique_lock lock(mu_);
  // Unbounded: the end-of-run gate holds for the whole workload.
  cv_.wait(lock, [&] { return shutdown_received_; });
  return abort_received_;
}

void Coordinator::AckShutdown() {
  HMDSM_CHECK(!is_lead());
  transport_.SendControl(lead_, Encode(ShutdownAckFrame{}));
}

void Coordinator::AwaitShutdownDone() {
  HMDSM_CHECK(!is_lead());
  std::unique_lock lock(mu_);
  WaitFor(lock, [&] { return shutdown_done_; }, "shutdown-done");
}

}  // namespace hmdsm::netio
