#include "src/netio/coordinator.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <utility>

#include "src/trace/trace.h"
#include "src/util/json.h"

namespace hmdsm::netio {

namespace {

/// Bounded control waits are not latency-sensitive, only hang-sensitive:
/// generous enough for a loaded CI machine, small enough that a wedged
/// cluster fails the run instead of idling forever. Only applied to waits
/// whose duration is bounded by the control protocol itself (probe
/// replies, acks); waits that track the application's own runtime —
/// thread start/completion, the end-of-run gate — are unbounded, with a
/// died peer detected by the transport's reader loops instead.
constexpr auto kControlTimeout = std::chrono::seconds(120);

/// How long a wait lingers after learning a peer died before unwinding:
/// long enough for an in-flight reply (or a /metrics scrape observing the
/// callout) to land, short enough that a dead cluster exits promptly.
constexpr auto kPeerDeathGrace = std::chrono::seconds(3);

/// The liveness beat period follows the transport's heartbeat timer; with
/// heartbeats disabled the tracker still exists for hard death callouts
/// (its evaluation clock is then pinned — see TickLiveness).
LivenessOptions LivenessFor(const SocketTransport& transport) {
  LivenessOptions o;
  if (transport.heartbeat_interval_ns() > 0)
    o.interval_ns = transport.heartbeat_interval_ns();
  return o;
}

/// "0,4,8" — rank lists for the poll line's health callouts.
std::string RankList(const std::vector<net::NodeId>& ranks) {
  std::string out;
  for (const net::NodeId r : ranks) {
    if (!out.empty()) out += ',';
    out += std::to_string(r);
  }
  return out;
}

}  // namespace

Coordinator::Coordinator(SocketTransport& transport,
                         runtime::Runtime& runtime, net::NodeId lead)
    : transport_(transport),
      runtime_(runtime),
      lead_(lead),
      hb_enabled_(transport.heartbeat_interval_ns() > 0),
      liveness_(LivenessFor(transport)) {
  HMDSM_CHECK(lead_ < transport_.node_count());
  // Track every remote process from birth, so a peer that dies before it
  // is ever heard from still ages toward suspect/dead.
  for (const LinkStats& link : transport_.LinkSnapshots())
    liveness_.Track(link.primary,
                    static_cast<std::uint64_t>(transport_.Now()));
  transport_.SetControlHandler(
      [this](net::NodeId src, ByteSpan frame) { OnControlFrame(src, frame); });
  transport_.SetPeerDownHandler(
      [this](net::NodeId primary, const std::string& why) {
        OnPeerDown(primary, why);
      });
}

Coordinator::~Coordinator() {
  unwinding_.store(true, std::memory_order_release);
  if (death_watchdog_.joinable()) death_watchdog_.join();
  StopPolling();
}

template <typename Pred>
void Coordinator::WaitFor(std::unique_lock<std::mutex>& lock, Pred pred,
                          const char* what) {
  // The base allowance plus a per-rank term: a 128-rank fan-in has more
  // replies to collect (and more processes contending for the machine)
  // than a 2-rank one, and must not time out just for being big.
  const auto timeout =
      kControlTimeout +
      std::chrono::milliseconds(250 * transport_.node_count());
  cv_.wait_for(lock, timeout, [&] { return pred() || !dead_procs_.empty(); });
  if (pred()) return;
  if (!dead_procs_.empty()) {
    // A dead peer cannot reply: linger only the short death grace (for a
    // reply that was already in flight), then unwind deliberately instead
    // of idling out the full control timeout.
    cv_.wait_for(lock, kPeerDeathGrace, [&] { return pred(); });
    HMDSM_CHECK_MSG(pred(), "peer process (primary rank "
                                << *dead_procs_.begin()
                                << ") died while waiting for " << what);
    return;
  }
  HMDSM_CHECK_MSG(false, "control-plane timeout waiting for " << what);
}

void Coordinator::OnControlFrame(net::NodeId src, ByteSpan frame) {
  FrameType type;
  std::string error;
  HMDSM_CHECK(PeekType(frame, &type));  // transport routed it, so it peeked
  switch (type) {
    case FrameType::kStartThread: {
      StartThreadFrame f;
      if (!TryDecode(frame, &f, &error)) break;
      std::lock_guard lock(mu_);
      started_.insert(f.seq);
      cv_.notify_all();
      return;
    }
    case FrameType::kThreadDone: {
      ThreadDoneFrame f;
      if (!TryDecode(frame, &f, &error)) break;
      std::lock_guard lock(mu_);
      done_[f.seq] = RemoteDone{std::move(f.error), std::move(f.result)};
      cv_.notify_all();
      return;
    }
    case FrameType::kQuiesceProbe: {
      QuiesceProbeFrame f;
      if (!TryDecode(frame, &f, &error)) break;
      // Replied straight from reader context: counters are atomics.
      transport_.SendControl(
          src, Encode(QuiesceReplyFrame{
                   f.round, transport_.wire_sent(), transport_.wire_received(),
                   transport_.enqueued(), transport_.dispatched()}));
      return;
    }
    case FrameType::kQuiesceReply: {
      QuiesceReplyFrame f;
      if (!TryDecode(frame, &f, &error)) break;
      std::lock_guard lock(mu_);
      if (f.round == quiesce_round_) quiesce_replies_[src] = f;
      cv_.notify_all();
      return;
    }
    case FrameType::kStatsRequest: {
      StatsRequestFrame f;
      if (!TryDecode(frame, &f, &error)) break;
      // Close the final (partial) sampling window before snapshotting, so
      // the gathered series covers the run right up to the gather.
      runtime_.SampleTimeseries();
      // All locally hosted ranks merged (Totals takes each agent lock, so
      // it is consistent even against a straggling handler — the lead
      // quiesces first anyway).
      StatsReplyFrame reply;
      reply.tag = f.tag;
      reply.node = transport_.rank();
      reply.recorder = runtime_.Totals();
      transport_.SendControl(src, Encode(reply));
      return;
    }
    case FrameType::kStatsReply: {
      StatsReplyFrame f;
      if (!TryDecode(frame, &f, &error)) break;
      std::lock_guard lock(mu_);
      if (f.tag == stats_tag_) stats_replies_[src] = std::move(f.recorder);
      cv_.notify_all();
      return;
    }
    case FrameType::kResetStats: {
      ResetStatsFrame f;
      if (!TryDecode(frame, &f, &error)) break;
      // The lead established global quiescence before broadcasting, so the
      // local reset (quiesce + zero + epoch) completes immediately and
      // races nothing.
      runtime_.ResetMeasurement();
      transport_.SendControl(src, Encode(ResetAckFrame{f.tag}));
      return;
    }
    case FrameType::kResetAck: {
      ResetAckFrame f;
      if (!TryDecode(frame, &f, &error)) break;
      std::lock_guard lock(mu_);
      if (f.tag == reset_tag_) ++reset_acks_;
      cv_.notify_all();
      return;
    }
    case FrameType::kShutdown: {
      ShutdownFrame f;
      if (!TryDecode(frame, &f, &error)) break;
      transport_.BeginShutdown();  // EOFs are goodbyes from here on
      std::lock_guard lock(mu_);
      shutdown_received_ = true;
      abort_received_ = f.abort;
      cv_.notify_all();
      return;
    }
    case FrameType::kShutdownAck: {
      ShutdownAckFrame f;
      if (!TryDecode(frame, &f, &error)) break;
      std::lock_guard lock(mu_);
      ++shutdown_acks_;
      cv_.notify_all();
      return;
    }
    case FrameType::kShutdownDone: {
      ShutdownDoneFrame f;
      if (!TryDecode(frame, &f, &error)) break;
      std::lock_guard lock(mu_);
      shutdown_done_ = true;
      cv_.notify_all();
      return;
    }
    case FrameType::kStatsPoll: {
      StatsPollFrame f;
      if (!TryDecode(frame, &f, &error)) break;
      // Best-effort mid-run snapshot, answered from reader context like a
      // quiescence probe (the snapshot briefly takes the agent lock). The
      // poll doubles as this rank's time-series clock: close one counter
      // window first so the snapshot carries the fresh sample to the lead.
      runtime_.SampleTimeseries();
      StatsPollReplyFrame reply;
      reply.seq = f.seq;
      reply.node = transport_.rank();
      reply.now_ns = static_cast<std::uint64_t>(transport_.Now());
      reply.recorder = runtime_.Totals();  // all locally hosted ranks
      transport_.SendControl(src, Encode(reply));
      return;
    }
    case FrameType::kStatsPollReply: {
      StatsPollReplyFrame f;
      if (!TryDecode(frame, &f, &error)) break;
      std::lock_guard lock(mu_);
      // Every reply refreshes that process's cached snapshot — a late
      // answer to an old poll is still its newest counters, and the merge
      // calls it out as stale rather than dropping it. Only a reply to
      // the current round counts as answered.
      const auto it = poll_latest_.find(src);
      if (it == poll_latest_.end() || f.seq >= it->second.seq)
        poll_latest_[src] = f;
      if (f.seq == poll_seq_) poll_replies_[src] = std::move(f);
      cv_.notify_all();
      return;
    }
    default:
      error = "unexpected frame type " +
              std::to_string(static_cast<int>(type));
      break;
  }
  HMDSM_CHECK_MSG(false, "control frame from rank " << src << ": " << error);
}

// ---------------------------------------------------------------------------
// Health plane
// ---------------------------------------------------------------------------

void Coordinator::OnPeerDown(net::NodeId primary, const std::string& why) {
  const sim::Time now = transport_.Now();
  // Snapshot outside mu_ (LinkSnapshots takes per-peer locks; mu_ must
  // never be held while acquiring them).
  const std::vector<LinkStats> links = transport_.LinkSnapshots();
  std::vector<LivenessTransition> transitions;
  {
    std::lock_guard lock(mu_);
    dead_procs_.insert(primary);
    liveness_.MarkDead(primary, why);
    ArmDeathWatchdog(primary);
    transitions = TickLiveness(links, static_cast<std::uint64_t>(now));
    if (!is_lead() && transport_.primary_of(lead_) == primary) {
      // The lead's process is gone: no start, shutdown, or all-clear will
      // ever arrive. Unblock the hosting-side gates as an aborted run so
      // this process unwinds instead of waiting forever.
      shutdown_received_ = true;
      abort_received_ = true;
      shutdown_done_ = true;
      transport_.BeginShutdown();
    }
  }
  cv_.notify_all();
  ReportTransitions(transitions, now);
}

void Coordinator::ArmDeathWatchdog(net::NodeId primary) {
  if (death_watchdog_.joinable()) return;
  // Dead-aware control waits give scrapes kPeerDeathGrace to observe the
  // callout, then throw and unwind. Application threads parked in DSM
  // protocol waits on the dead rank have no such escape; if the process
  // has not started unwinding well past that grace, fail loudly rather
  // than sitting out the full control timeout.
  death_watchdog_ = std::thread([this, primary] {
    const auto deadline = std::chrono::steady_clock::now() + 3 * kPeerDeathGrace;
    while (std::chrono::steady_clock::now() < deadline) {
      if (unwinding_.load(std::memory_order_acquire)) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    if (unwinding_.load(std::memory_order_acquire)) return;
    std::fprintf(stderr,
                 "hmdsm health: rank %u: peer process (primary rank %u) died "
                 "and the run is still stalled after the death grace; "
                 "aborting\n",
                 transport_.rank(), primary);
    std::abort();
  });
}

std::vector<LivenessTransition> Coordinator::TickLiveness(
    const std::vector<LinkStats>& links, std::uint64_t now_ns) {
  for (const LinkStats& link : links)
    liveness_.Observe(link.primary, link.last_heard_ns);
  // With heartbeats off a quiet link is not evidence of death, so the
  // evaluation clock is pinned to 0: silent-time counting never fires and
  // only hard callouts (MarkDead) advance state.
  return liveness_.Evaluate(hb_enabled_ ? now_ns : 0);
}

void Coordinator::ReportTransitions(
    const std::vector<LivenessTransition>& transitions, std::int64_t now_ns) {
  if (transitions.empty()) return;
  trace::Trace* trace = runtime_.options().trace;
  for (const LivenessTransition& tr : transitions) {
    std::fprintf(stderr,
                 "hmdsm health: rank %u: peer process (primary rank %u) "
                 "%s -> %s after %llu missed beats%s%s\n",
                 transport_.rank(), tr.peer, PeerStateName(tr.from),
                 PeerStateName(tr.to),
                 static_cast<unsigned long long>(tr.missed),
                 tr.why.empty() ? "" : ": ", tr.why.c_str());
    if (trace == nullptr) continue;
    if (tr.to == PeerState::kSuspect) {
      trace->Record({now_ns, trace::What::kPeerSuspect, transport_.rank(),
                     tr.peer, 0, static_cast<std::int64_t>(tr.missed)});
    } else if (tr.to == PeerState::kDead) {
      trace->Record({now_ns, trace::What::kPeerDead, transport_.rank(),
                     tr.peer, 0, static_cast<std::int64_t>(tr.missed)});
    }
  }
}

Coordinator::HealthView Coordinator::HealthSnapshot() {
  HealthView out;
  out.links = transport_.LinkSnapshots();
  out.heartbeat_interval_ns = transport_.heartbeat_interval_ns();
  const sim::Time now = transport_.Now();
  std::vector<LivenessTransition> transitions;
  {
    std::lock_guard lock(mu_);
    transitions = TickLiveness(out.links, static_cast<std::uint64_t>(now));
    out.peers = liveness_.Snapshot();
    out.all_healthy = liveness_.AllHealthy();
    out.any_dead = liveness_.AnyDead();
  }
  ReportTransitions(transitions, now);
  return out;
}

Coordinator::PollView Coordinator::LatestPoll() {
  std::lock_guard lock(mu_);
  return latest_view_;
}

// ---------------------------------------------------------------------------
// Lead side
// ---------------------------------------------------------------------------

void Coordinator::StartRemoteThread(net::NodeId host, std::uint64_t seq) {
  HMDSM_CHECK(is_lead());
  transport_.SendControl(host, Encode(StartThreadFrame{seq}));
}

Coordinator::RemoteDone Coordinator::AwaitThreadDone(std::uint64_t seq) {
  HMDSM_CHECK(is_lead());
  std::unique_lock lock(mu_);
  // Unbounded: a remote body legitimately runs as long as the workload —
  // but a dead peer ends the wait after the short death grace (for a done
  // frame already in flight): its report may never come.
  cv_.wait(lock, [&] { return done_.contains(seq) || !dead_procs_.empty(); });
  if (!done_.contains(seq)) {
    cv_.wait_for(lock, kPeerDeathGrace, [&] { return done_.contains(seq); });
    HMDSM_CHECK_MSG(done_.contains(seq),
                    "peer process (primary rank "
                        << *dead_procs_.begin() << ") died before thread "
                        << seq << " completed");
  }
  return done_.at(seq);
}

void Coordinator::GlobalQuiesce() {
  HMDSM_CHECK(is_lead());
  // One reply per *process*: the wire/mailbox counters are process-level,
  // and that is exactly the granularity quiescence needs.
  const std::size_t others = transport_.process_count() - 1;
  std::vector<QuiesceReplyFrame> previous;
  for (;;) {
    runtime_.AwaitQuiescence();  // local first: cheap and usually sufficient
    std::vector<QuiesceReplyFrame> round(transport_.node_count());
    {
      std::unique_lock lock(mu_);
      const std::uint64_t round_id = ++quiesce_round_;
      quiesce_replies_.clear();
      transport_.BroadcastControl(Encode(QuiesceProbeFrame{round_id}));
      WaitFor(lock, [&] { return quiesce_replies_.size() == others; },
              "quiescence probe replies");
      for (const auto& [rank, reply] : quiesce_replies_) round[rank] = reply;
    }
    round[transport_.rank()] = QuiesceReplyFrame{
        0, transport_.wire_sent(), transport_.wire_received(),
        transport_.enqueued(), transport_.dispatched()};

    std::uint64_t sent = 0, received = 0;
    bool locally_idle = true;
    for (const QuiesceReplyFrame& r : round) {
      sent += r.wire_sent;
      received += r.wire_received;
      locally_idle = locally_idle && r.enqueued == r.dispatched;
    }
    const auto same = [](const QuiesceReplyFrame& a,
                         const QuiesceReplyFrame& b) {
      return a.wire_sent == b.wire_sent &&
             a.wire_received == b.wire_received && a.enqueued == b.enqueued &&
             a.dispatched == b.dispatched;
    };
    bool stable = !previous.empty();
    for (std::size_t i = 0; stable && i < round.size(); ++i)
      stable = same(round[i], previous[i]);
    // Counters are monotone: identical counters across two rounds with
    // matched sums and idle mailboxes means nothing moved in between.
    if (sent == received && locally_idle && stable) return;
    previous = std::move(round);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

stats::Recorder Coordinator::GatherStats() {
  HMDSM_CHECK(is_lead());
  // One StatsReply per remote *process*, each already a merge of all the
  // ranks that process hosts.
  const std::size_t others = transport_.process_count() - 1;
  stats::Recorder total;
  total.SetNodeCount(transport_.node_count());
  std::unique_lock lock(mu_);
  const std::uint64_t tag = ++stats_tag_;
  stats_replies_.clear();
  transport_.BroadcastControl(Encode(StatsRequestFrame{tag}));
  WaitFor(lock, [&] { return stats_replies_.size() == others; },
          "stats replies");
  for (const auto& [rank, recorder] : stats_replies_) total.Merge(recorder);
  lock.unlock();
  // Same final-window close for the lead's own series as the StatsRequest
  // handler performs on every other process.
  runtime_.SampleTimeseries();
  total.Merge(runtime_.Totals());
  return total;
}

void Coordinator::GlobalResetStats() {
  HMDSM_CHECK(is_lead());
  // Quiesce first so no in-flight message straddles the reset; the acks
  // below guarantee every rank reset before the lead proceeds (and the
  // per-peer FIFO queues order each rank's reset before any later
  // lead-caused traffic) — so measured windows cover identical traffic on
  // every rank.
  GlobalQuiesce();
  const std::size_t others = transport_.process_count() - 1;
  std::unique_lock lock(mu_);
  const std::uint64_t tag = ++reset_tag_;
  reset_acks_ = 0;
  transport_.BroadcastControl(Encode(ResetStatsFrame{tag}));
  WaitFor(lock, [&] { return reset_acks_ == others; }, "reset acks");
  lock.unlock();
  runtime_.ResetMeasurement();
}

void Coordinator::StartPolling(double interval_s, std::string poll_out) {
  HMDSM_CHECK(is_lead());
  if (interval_s <= 0 || transport_.node_count() < 2) return;
  HMDSM_CHECK_MSG(!poll_thread_.joinable(), "polling already started");
  {
    std::lock_guard lock(mu_);
    poll_stop_ = false;
    poll_out_ = std::move(poll_out);
    poll_log_.clear();
    // A fresh polling epoch must not merge snapshots cached before a
    // measurement reset — they would resurrect pre-reset counters.
    poll_latest_.clear();
    latest_view_ = PollView{};
  }
  poll_thread_ = std::thread([this, interval_s] { PollLoop(interval_s); });
}

void Coordinator::StopPolling() {
  // Teardown has begun: the death watchdog (if armed) must stand down.
  unwinding_.store(true, std::memory_order_release);
  if (!poll_thread_.joinable()) return;
  {
    std::lock_guard lock(mu_);
    poll_stop_ = true;
  }
  cv_.notify_all();
  poll_thread_.join();
  std::vector<PollSample> log;
  std::string path;
  {
    std::lock_guard lock(mu_);
    log.swap(poll_log_);
    path.swap(poll_out_);
  }
  if (path.empty()) return;
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "poll-out: cannot write %s\n", path.c_str());
    return;
  }
  {
    JsonWriter jw(os);
    jw.BeginArray();
    for (const PollSample& s : log) {
      jw.BeginObject();
      jw.Key("seq").Uint(s.seq);
      jw.Key("t_s").Double(s.t_s);
      jw.Key("msgs").Uint(s.msgs);
      jw.Key("msgs_per_s").Double(s.msgs_per_s);
      jw.Key("faults").Uint(s.faults);
      jw.Key("migrations").Uint(s.migrations);
      jw.Key("answered").Uint(s.answered);
      jw.Key("expected").Uint(s.expected);
      jw.Key("stale").BeginArray();
      for (const net::NodeId r : s.stale) jw.Uint(r);
      jw.EndArray();
      jw.Key("suspect").BeginArray();
      for (const net::NodeId r : s.suspect) jw.Uint(r);
      jw.EndArray();
      jw.Key("dead").BeginArray();
      for (const net::NodeId r : s.dead) jw.Uint(r);
      jw.EndArray();
      jw.EndObject();
    }
    jw.EndArray();
  }
  os << '\n';
}

double Coordinator::PollRate(std::uint64_t msgs, std::uint64_t prev_msgs,
                             double dt_s, std::size_t answered,
                             std::size_t expected) {
  // Polls are best-effort, so a sample can be missing whole processes: its
  // merged total is then smaller than a complete previous one, and the
  // unsigned delta `msgs - prev_msgs` would wrap to ~1.8e19. Incomplete
  // and backward samples yield no rate rather than an absurd one.
  if (dt_s <= 0 || answered < expected || msgs < prev_msgs) return 0.0;
  return static_cast<double>(msgs - prev_msgs) / dt_s;
}

void Coordinator::PollLoop(double interval_s) {
  const auto interval = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double>(interval_s));
  const std::size_t others = transport_.process_count() - 1;
  // The remote primaries, fixed for the run: the stale scan below must
  // notice a process that never answered any poll at all.
  std::vector<net::NodeId> remotes;
  for (const LinkStats& link : transport_.LinkSnapshots())
    remotes.push_back(link.primary);
  std::uint64_t prev_msgs = 0;
  sim::Time prev_ns = 0;
  bool have_prev = false;
  std::unique_lock lock(mu_);
  for (;;) {
    if (cv_.wait_for(lock, interval, [&] { return poll_stop_; })) return;
    poll_replies_.clear();
    const std::uint64_t seq = ++poll_seq_;
    transport_.BroadcastControl(Encode(StatsPollFrame{seq}));
    // Best-effort: a process that cannot answer within a full interval is
    // reported as stale, not waited out — live metrics must never wedge
    // the run they observe. Dead processes are not waited for at all.
    cv_.wait_for(lock, interval, [&] {
      return poll_stop_ ||
             poll_replies_.size() >= others - dead_procs_.size();
    });
    if (poll_stop_) return;
    stats::Recorder total;
    total.SetNodeCount(transport_.node_count());
    std::vector<net::NodeId> stale;
    for (const net::NodeId r : remotes) {
      const auto it = poll_latest_.find(r);
      if (it == poll_latest_.end()) {
        stale.push_back(r);  // never answered any poll yet
        continue;
      }
      // Merge the newest snapshot held even when it answered an older
      // round — called out as stale instead of silently folded in.
      total.Merge(it->second.recorder);
      if (it->second.seq != seq) stale.push_back(r);
    }
    const std::size_t answered = poll_replies_.size();
    lock.unlock();
    const std::vector<LinkStats> links = transport_.LinkSnapshots();
    // The lead has no poll frame to react to — sample its own window here.
    runtime_.SampleTimeseries();
    total.Merge(runtime_.Totals());
    const sim::Time now = transport_.Now();
    const std::uint64_t msgs = total.TotalMessages();
    const double rate =
        PollRate(msgs, prev_msgs, have_prev ? sim::ToSeconds(now - prev_ns) : 0,
                 answered, others);
    lock.lock();
    const std::vector<LivenessTransition> transitions =
        TickLiveness(links, static_cast<std::uint64_t>(now));
    std::vector<net::NodeId> suspect, dead;
    for (const PeerHealth& p : liveness_.Snapshot()) {
      if (p.state == PeerState::kSuspect) suspect.push_back(p.peer);
      if (p.state == PeerState::kDead) dead.push_back(p.peer);
    }
    latest_view_.valid = true;
    latest_view_.seq = seq;
    latest_view_.t_s = sim::ToSeconds(now);
    latest_view_.totals = total;
    latest_view_.answered = answered;
    latest_view_.expected = others;
    latest_view_.stale = stale;
    poll_log_.push_back(PollSample{seq, sim::ToSeconds(now), msgs,
                                   total.Count(stats::Ev::kFaultIns),
                                   total.Count(stats::Ev::kMigrations), rate,
                                   answered, others, stale, suspect, dead});
    lock.unlock();
    ReportTransitions(transitions, now);
    std::string note;
    if (answered < others) note += " [missing process replies]";
    if (!stale.empty()) note += " [stale:" + RankList(stale) + "]";
    if (!suspect.empty()) note += " [suspect:" + RankList(suspect) + "]";
    if (!dead.empty()) note += " [dead:" + RankList(dead) + "]";
    std::fprintf(stderr,
                 "hmdsm poll #%llu: t=%.1fs msgs=%llu (%.0f/s) faults=%llu "
                 "migrations=%llu%s\n",
                 static_cast<unsigned long long>(seq), sim::ToSeconds(now),
                 static_cast<unsigned long long>(msgs), rate,
                 static_cast<unsigned long long>(
                     total.Count(stats::Ev::kFaultIns)),
                 static_cast<unsigned long long>(
                     total.Count(stats::Ev::kMigrations)),
                 note.c_str());
    // The comparison cursor only ever advances onto *complete* samples: a
    // rate against a total that was merely missing replies would read as a
    // spurious burst (or, unsigned, as the underflow PollRate guards).
    if (answered == others) {
      prev_msgs = msgs;
      prev_ns = now;
      have_prev = true;
    }
    lock.lock();
  }
}

void Coordinator::ShutdownMesh(bool abort) {
  HMDSM_CHECK(is_lead());
  transport_.BeginShutdown();
  const std::size_t others = transport_.process_count() - 1;
  {
    std::unique_lock lock(mu_);
    transport_.BroadcastControl(Encode(ShutdownFrame{abort}));
    // Dead processes can never ack; the barrier shrinks past them so a
    // partially-dead cluster still unwinds cleanly (re-evaluated under
    // mu_, so a death mid-wait lowers the bar immediately).
    WaitFor(lock,
            [&] { return shutdown_acks_ >= others - dead_procs_.size(); },
            "shutdown acks");
  }
  // Second phase: nobody closes a socket until everyone has acked, so a
  // teardown EOF can only land on a rank that already knows the run ended.
  transport_.BroadcastControl(Encode(ShutdownDoneFrame{}));
}

// ---------------------------------------------------------------------------
// Hosting side
// ---------------------------------------------------------------------------

bool Coordinator::AwaitStart(std::uint64_t seq) {
  std::unique_lock lock(mu_);
  // Unbounded: the lead reaches its Spawn at the workload's own pace. A
  // dead peer anywhere means the cluster is unwinding — after a grace for
  // an in-flight start, treat it as an abort (the body must not run).
  cv_.wait(lock, [&] {
    return started_.contains(seq) || abort_received_ || !dead_procs_.empty();
  });
  if (!started_.contains(seq) && !abort_received_ && !dead_procs_.empty()) {
    cv_.wait_for(lock, kPeerDeathGrace,
                 [&] { return started_.contains(seq) || abort_received_; });
  }
  return started_.contains(seq) && !abort_received_;
}

void Coordinator::NotifyThreadDone(std::uint64_t seq,
                                   const std::string& error,
                                   const Bytes& result) {
  HMDSM_CHECK(!is_lead());
  ThreadDoneFrame f;
  f.seq = seq;
  f.error = error;
  f.result = result;
  transport_.SendControl(lead_, Encode(f));
}

bool Coordinator::AwaitShutdown() {
  HMDSM_CHECK(!is_lead());
  std::unique_lock lock(mu_);
  // Unbounded: the end-of-run gate holds for the whole workload.
  cv_.wait(lock, [&] { return shutdown_received_; });
  return abort_received_;
}

void Coordinator::AckShutdown() {
  HMDSM_CHECK(!is_lead());
  transport_.SendControl(lead_, Encode(ShutdownAckFrame{}));
}

void Coordinator::AwaitShutdownDone() {
  HMDSM_CHECK(!is_lead());
  std::unique_lock lock(mu_);
  WaitFor(lock, [&] { return shutdown_done_; }, "shutdown-done");
}

}  // namespace hmdsm::netio
