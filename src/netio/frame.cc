#include "src/netio/frame.h"

#include <utility>

namespace hmdsm::netio {

namespace {

Writer Begin(FrameType type) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(type));
  return w;
}

/// Shared defensive-decode scaffold: checks the type byte, runs `body`
/// against a Reader over the rest, converts truncation/range CheckErrors
/// into a false return, and rejects trailing bytes. Decoders stay simple
/// field readers; nothing a peer sends can unwind past here.
template <typename Fn>
bool Defensive(ByteSpan frame, FrameType expected, std::string* error,
               Fn&& body) {
  FrameType type;
  if (!PeekType(frame, &type) || type != expected) {
    if (error != nullptr) {
      *error = "bad frame type (expected " +
               std::to_string(static_cast<int>(expected)) + ")";
    }
    return false;
  }
  try {
    Reader r(frame.subspan(1));
    body(r);
    if (!r.done()) {
      if (error != nullptr) {
        *error = "trailing garbage: " + std::to_string(r.remaining()) +
                 " bytes after the frame";
      }
      return false;
    }
    return true;
  } catch (const CheckError& e) {
    if (error != nullptr) *error = e.what();
    return false;
  }
}

}  // namespace

Bytes Encode(const HelloFrame& f) {
  Writer w = Begin(FrameType::kHello);
  w.u32(f.version);
  w.u32(f.node);
  w.u32(f.node_count);
  w.u32(f.ranks_per_proc);
  w.u32(f.flags);
  w.u64(f.host_id);
  w.str(f.shm_name);
  return w.take();
}

bool TryDecode(ByteSpan frame, HelloFrame* out, std::string* error) {
  return Defensive(frame, FrameType::kHello, error, [&](Reader& r) {
    out->version = r.u32();
    out->node = r.u32();
    out->node_count = r.u32();
    out->ranks_per_proc = r.u32();
    out->flags = r.u32();
    out->host_id = r.u64();
    out->shm_name = r.str();
  });
}

Bytes Encode(const HelloAckFrame& f) {
  Writer w = Begin(FrameType::kHelloAck);
  w.u32(f.version);
  w.u32(f.node);
  w.u32(f.flags);
  w.u64(f.host_id);
  w.str(f.shm_name);
  return w.take();
}

bool TryDecode(ByteSpan frame, HelloAckFrame* out, std::string* error) {
  return Defensive(frame, FrameType::kHelloAck, error, [&](Reader& r) {
    out->version = r.u32();
    out->node = r.u32();
    out->flags = r.u32();
    out->host_id = r.u64();
    out->shm_name = r.str();
  });
}

Bytes Encode(const DataFrame& f) {
  Writer w = Begin(FrameType::kData);
  w.u32(f.src);
  w.u32(f.dst);
  w.u8(static_cast<std::uint8_t>(f.cat));
  w.bytes(f.payload);
  return w.take();
}

namespace {

/// Shared by both DataFrame decoders: everything but the payload
/// materialization (owned copy vs aliased view), so the span and Buf
/// overloads cannot drift apart. Returns the payload span inside the frame.
ByteSpan DecodeDataHeader(Reader& r, DataFrame* out) {
  out->src = r.u32();
  out->dst = r.u32();
  const std::uint8_t cat = r.u8();
  HMDSM_CHECK_MSG(cat < stats::kNumMsgCats,
                  "message category " << static_cast<int>(cat)
                                      << " out of range");
  out->cat = static_cast<stats::MsgCat>(cat);
  const std::uint32_t len = r.u32();
  return r.raw(len);  // bounds-checked by the Reader
}

}  // namespace

bool TryDecode(ByteSpan frame, DataFrame* out, std::string* error) {
  return Defensive(frame, FrameType::kData, error, [&](Reader& r) {
    out->payload = Buf::Copy(DecodeDataHeader(r, out));
  });
}

bool TryDecode(const Buf& frame, DataFrame* out, std::string* error) {
  const ByteSpan span = frame.span();
  return Defensive(span, FrameType::kData, error, [&](Reader& r) {
    const ByteSpan payload = DecodeDataHeader(r, out);
    out->payload = frame.View(
        static_cast<std::size_t>(payload.data() - span.data()),
        payload.size());
  });
}

Bytes Encode(const DeltaFrame& f) {
  Writer w = Begin(FrameType::kDelta);
  w.u32(f.src);
  w.u32(f.dst);
  w.u8(static_cast<std::uint8_t>(f.cat));
  w.u64(f.obj);
  w.u32(f.base_seq);
  w.bytes(f.diff);
  return w.take();
}

namespace {

/// Structural validation of an embedded dsm::Diff: bounded run count,
/// ordered in-bounds runs, no truncation, no trailing bytes. Throws
/// CheckError (converted to a false decode by Defensive) so a hostile diff
/// is rejected at the frame boundary, before any apply touches it.
void ValidateDiffRuns(ByteSpan diff) {
  Reader r(diff);
  const std::uint32_t size = r.u32();
  const std::uint32_t run_count = r.u32();
  // Each run costs at least 8 header bytes: a count the remaining bytes
  // cannot hold is hostile, reject before looping.
  HMDSM_CHECK_MSG(run_count <= r.remaining() / 8,
                  "delta run count " << run_count << " cannot fit in "
                                     << r.remaining() << " bytes");
  std::size_t prev_end = 0;
  for (std::uint32_t k = 0; k < run_count; ++k) {
    const std::uint32_t offset = r.u32();
    const std::uint32_t length = r.u32();
    HMDSM_CHECK_MSG(offset >= prev_end, "delta runs out of order");
    HMDSM_CHECK_MSG(static_cast<std::size_t>(offset) + length <= size,
                    "delta run exceeds object bounds");
    r.raw(length);  // truncation-checked by the Reader
    prev_end = offset + length;
  }
  HMDSM_CHECK_MSG(r.done(), "trailing bytes after delta runs");
}

/// Shared by both DeltaFrame decoders (same split as DecodeDataHeader).
/// Returns the validated diff span inside the frame.
ByteSpan DecodeDeltaHeader(Reader& r, DeltaFrame* out) {
  out->src = r.u32();
  out->dst = r.u32();
  const std::uint8_t cat = r.u8();
  HMDSM_CHECK_MSG(cat < stats::kNumMsgCats,
                  "message category " << static_cast<int>(cat)
                                      << " out of range");
  out->cat = static_cast<stats::MsgCat>(cat);
  out->obj = r.u64();
  out->base_seq = r.u32();
  const std::uint32_t len = r.u32();
  const ByteSpan diff = r.raw(len);  // bounds-checked by the Reader
  ValidateDiffRuns(diff);
  return diff;
}

}  // namespace

bool TryDecode(ByteSpan frame, DeltaFrame* out, std::string* error) {
  return Defensive(frame, FrameType::kDelta, error, [&](Reader& r) {
    out->diff = Buf::Copy(DecodeDeltaHeader(r, out));
  });
}

bool TryDecode(const Buf& frame, DeltaFrame* out, std::string* error) {
  const ByteSpan span = frame.span();
  return Defensive(span, FrameType::kDelta, error, [&](Reader& r) {
    const ByteSpan diff = DecodeDeltaHeader(r, out);
    out->diff = frame.View(
        static_cast<std::size_t>(diff.data() - span.data()), diff.size());
  });
}

Bytes EncodeBatch(const std::vector<Bytes>& frames) {
  HMDSM_CHECK_MSG(frames.size() >= 2, "a batch coalesces at least 2 frames");
  std::size_t total = 1 + 4;
  for (const Bytes& f : frames) total += 4 + f.size();
  Bytes out;
  out.reserve(total);
  Writer w(std::move(out));
  w.u8(static_cast<std::uint8_t>(FrameType::kBatch));
  w.u32(static_cast<std::uint32_t>(frames.size()));
  for (const Bytes& f : frames) w.bytes(f);
  return w.take();
}

bool TryDecodeBatch(const Buf& frame, std::vector<Buf>* out,
                    std::string* error) {
  const ByteSpan span = frame.span();
  return Defensive(span, FrameType::kBatch, error, [&](Reader& r) {
    const std::uint32_t count = r.u32();
    // Each inner frame costs at least its length prefix plus a type byte,
    // so a count the remaining bytes cannot hold is hostile — reject it
    // before reserving anything.
    HMDSM_CHECK_MSG(count >= 2, "batch of " << count << " frames");
    HMDSM_CHECK_MSG(count <= r.remaining() / 5,
                    "batch count " << count << " cannot fit in "
                                   << r.remaining() << " bytes");
    out->clear();
    out->reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint32_t len = r.u32();
      const ByteSpan inner = r.raw(len);  // bounds-checked by the Reader
      FrameType type;
      HMDSM_CHECK_MSG(PeekType(inner, &type),
                      "batched frame " << i << " has no valid type");
      HMDSM_CHECK_MSG(type != FrameType::kBatch, "nested batch frame");
      out->push_back(frame.View(
          static_cast<std::size_t>(inner.data() - span.data()), len));
    }
  });
}

Bytes Encode(const StartThreadFrame& f) {
  Writer w = Begin(FrameType::kStartThread);
  w.u64(f.seq);
  return w.take();
}

bool TryDecode(ByteSpan frame, StartThreadFrame* out, std::string* error) {
  return Defensive(frame, FrameType::kStartThread, error,
                   [&](Reader& r) { out->seq = r.u64(); });
}

Bytes Encode(const ThreadDoneFrame& f) {
  Writer w = Begin(FrameType::kThreadDone);
  w.u64(f.seq);
  w.str(f.error);
  w.bytes(f.result);
  return w.take();
}

bool TryDecode(ByteSpan frame, ThreadDoneFrame* out, std::string* error) {
  return Defensive(frame, FrameType::kThreadDone, error, [&](Reader& r) {
    out->seq = r.u64();
    out->error = r.str();
    out->result = r.bytes();
  });
}

Bytes Encode(const QuiesceProbeFrame& f) {
  Writer w = Begin(FrameType::kQuiesceProbe);
  w.u64(f.round);
  return w.take();
}

bool TryDecode(ByteSpan frame, QuiesceProbeFrame* out, std::string* error) {
  return Defensive(frame, FrameType::kQuiesceProbe, error,
                   [&](Reader& r) { out->round = r.u64(); });
}

Bytes Encode(const QuiesceReplyFrame& f) {
  Writer w = Begin(FrameType::kQuiesceReply);
  w.u64(f.round);
  w.u64(f.wire_sent);
  w.u64(f.wire_received);
  w.u64(f.enqueued);
  w.u64(f.dispatched);
  return w.take();
}

bool TryDecode(ByteSpan frame, QuiesceReplyFrame* out, std::string* error) {
  return Defensive(frame, FrameType::kQuiesceReply, error, [&](Reader& r) {
    out->round = r.u64();
    out->wire_sent = r.u64();
    out->wire_received = r.u64();
    out->enqueued = r.u64();
    out->dispatched = r.u64();
  });
}

Bytes Encode(const StatsRequestFrame& f) {
  Writer w = Begin(FrameType::kStatsRequest);
  w.u64(f.tag);
  return w.take();
}

bool TryDecode(ByteSpan frame, StatsRequestFrame* out, std::string* error) {
  return Defensive(frame, FrameType::kStatsRequest, error,
                   [&](Reader& r) { out->tag = r.u64(); });
}

Bytes Encode(const StatsReplyFrame& f) {
  Writer w = Begin(FrameType::kStatsReply);
  w.u64(f.tag);
  w.u32(f.node);
  f.recorder.Encode(w);
  return w.take();
}

bool TryDecode(ByteSpan frame, StatsReplyFrame* out, std::string* error) {
  return Defensive(frame, FrameType::kStatsReply, error, [&](Reader& r) {
    out->tag = r.u64();
    out->node = r.u32();
    out->recorder = stats::Recorder::Decode(r);
  });
}

Bytes Encode(const ResetStatsFrame& f) {
  Writer w = Begin(FrameType::kResetStats);
  w.u64(f.tag);
  return w.take();
}

bool TryDecode(ByteSpan frame, ResetStatsFrame* out, std::string* error) {
  return Defensive(frame, FrameType::kResetStats, error,
                   [&](Reader& r) { out->tag = r.u64(); });
}

Bytes Encode(const ResetAckFrame& f) {
  Writer w = Begin(FrameType::kResetAck);
  w.u64(f.tag);
  return w.take();
}

bool TryDecode(ByteSpan frame, ResetAckFrame* out, std::string* error) {
  return Defensive(frame, FrameType::kResetAck, error,
                   [&](Reader& r) { out->tag = r.u64(); });
}

Bytes Encode(const ShutdownFrame& f) {
  Writer w = Begin(FrameType::kShutdown);
  w.u8(f.abort ? 1 : 0);
  return w.take();
}

bool TryDecode(ByteSpan frame, ShutdownFrame* out, std::string* error) {
  return Defensive(frame, FrameType::kShutdown, error,
                   [&](Reader& r) { out->abort = r.u8() != 0; });
}

Bytes Encode(const ShutdownAckFrame&) {
  return Begin(FrameType::kShutdownAck).take();
}

bool TryDecode(ByteSpan frame, ShutdownAckFrame* out, std::string* error) {
  (void)out;
  return Defensive(frame, FrameType::kShutdownAck, error, [](Reader&) {});
}

Bytes Encode(const ShutdownDoneFrame&) {
  return Begin(FrameType::kShutdownDone).take();
}

bool TryDecode(ByteSpan frame, ShutdownDoneFrame* out, std::string* error) {
  (void)out;
  return Defensive(frame, FrameType::kShutdownDone, error, [](Reader&) {});
}

Bytes Encode(const StatsPollFrame& f) {
  Writer w = Begin(FrameType::kStatsPoll);
  w.u64(f.seq);
  return w.take();
}

bool TryDecode(ByteSpan frame, StatsPollFrame* out, std::string* error) {
  return Defensive(frame, FrameType::kStatsPoll, error,
                   [&](Reader& r) { out->seq = r.u64(); });
}

Bytes Encode(const StatsPollReplyFrame& f) {
  Writer w = Begin(FrameType::kStatsPollReply);
  w.u64(f.seq);
  w.u32(f.node);
  w.u64(f.now_ns);
  f.recorder.Encode(w);
  return w.take();
}

bool TryDecode(ByteSpan frame, StatsPollReplyFrame* out, std::string* error) {
  return Defensive(frame, FrameType::kStatsPollReply, error, [&](Reader& r) {
    out->seq = r.u64();
    out->node = r.u32();
    out->now_ns = r.u64();
    out->recorder = stats::Recorder::Decode(r);
  });
}

Bytes Encode(const HeartbeatFrame& f) {
  Writer w = Begin(FrameType::kHeartbeat);
  w.u64(f.seq);
  w.u64(f.send_ns);
  return w.take();
}

bool TryDecode(ByteSpan frame, HeartbeatFrame* out, std::string* error) {
  return Defensive(frame, FrameType::kHeartbeat, error, [&](Reader& r) {
    out->seq = r.u64();
    out->send_ns = r.u64();
  });
}

Bytes Encode(const HeartbeatAckFrame& f) {
  Writer w = Begin(FrameType::kHeartbeatAck);
  w.u64(f.seq);
  w.u64(f.send_ns);
  return w.take();
}

bool TryDecode(ByteSpan frame, HeartbeatAckFrame* out, std::string* error) {
  return Defensive(frame, FrameType::kHeartbeatAck, error, [&](Reader& r) {
    out->seq = r.u64();
    out->send_ns = r.u64();
  });
}

}  // namespace hmdsm::netio
