// The execution-context seam between the DSM protocol layer and whatever is
// actually running application code.
//
// The blocking side of the protocol (Read/Write/Acquire/Release/Barrier in
// dsm::Agent) needs exactly three primitives from its caller: advance time
// (`Delay`), block until woken (`Park`), and wake a blocked peer (`Unpark`).
// `Exec` abstracts those so the same Agent code serves two backends:
//
//   * sim::Process     — a cooperative simulated process; Park hands the
//     single baton back to the discrete-event kernel, Delay advances virtual
//     time. Bit-deterministic.
//   * runtime::Guest   — a real std::thread bound to one node of the
//     threads backend; Park waits on a condition variable while releasing
//     the node's agent lock, Delay sleeps wall-clock time.
//
// The contract both implementations honour (and the protocol relies on):
// between entering a blocking Agent call and the moment Park actually
// blocks, no protocol message for this node is processed — the sim
// guarantees it with the single baton, the threads backend with the
// per-node agent lock that Park releases only once the caller is parked.
// This is what makes "send request, then Wait()" free of lost wakeups.
#pragma once

#include <cstdint>
#include <deque>

#include "src/sim/time.h"
#include "src/util/check.h"

namespace hmdsm::runtime {

/// One blocked-or-running application context (simulated process or real
/// thread). All methods are called with the owning backend's serialization
/// in force (kernel baton / node agent lock).
class Exec {
 public:
  virtual ~Exec() = default;

  /// Models local computation: virtual time in the simulator, a wall-clock
  /// sleep on the threads backend. Callable only from the context itself,
  /// outside any Agent call.
  virtual void Delay(sim::Time dt) = 0;

  /// Blocks until another party calls Unpark(). Returns the value passed to
  /// Unpark (an opaque token, useful to distinguish wakeup reasons).
  virtual std::uint64_t Park() = 0;

  /// Makes a parked context runnable. It is an error to unpark a context
  /// that is not parked (lost-wakeup bugs in the protocol layer should fail
  /// loudly, not be absorbed).
  virtual void Unpark(std::uint64_t token = 0) = 0;
};

/// Strict-FIFO park/unpark queue over Exec — the building block for the
/// blocking primitives (reply slots, lock waits, barriers). Wakeups are
/// never lost: NotifyOne on an empty queue is an error by design (the DSM
/// layer always checks for a waiter before notifying). Not internally
/// synchronized: callers rely on the backend's per-node serialization.
class WaitQueue {
 public:
  /// Parks `e` until a notify reaches it. Returns the token passed to the
  /// corresponding NotifyOne/NotifyAll call.
  std::uint64_t Wait(Exec& e) {
    waiters_.push_back(&e);
    return e.Park();
  }

  bool empty() const { return waiters_.empty(); }
  std::size_t size() const { return waiters_.size(); }

  /// Wakes the longest-waiting context.
  void NotifyOne(std::uint64_t token = 0) {
    HMDSM_CHECK_MSG(!waiters_.empty(), "NotifyOne on empty wait queue");
    Exec* e = waiters_.front();
    waiters_.pop_front();
    e->Unpark(token);
  }

  /// Wakes every waiter (in FIFO order).
  void NotifyAll(std::uint64_t token = 0) {
    std::deque<Exec*> batch;
    batch.swap(waiters_);
    for (Exec* e : batch) e->Unpark(token);
  }

 private:
  std::deque<Exec*> waiters_;
};

}  // namespace hmdsm::runtime
