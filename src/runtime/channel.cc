#include "src/runtime/channel.h"

#include <thread>
#include <utility>

namespace hmdsm::runtime {

void PreciseSleepFor(sim::Time dt) {
  if (dt <= 0) return;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(dt);
  // Leave the typical coarse-sleep overshoot as spin margin.
  constexpr sim::Time kSpinMarginNs = 150'000;
  if (dt > kSpinMarginNs)
    std::this_thread::sleep_for(std::chrono::nanoseconds(dt - kSpinMarginNs));
  while (std::chrono::steady_clock::now() < deadline)
    std::this_thread::yield();
}

ChannelTransport::ChannelTransport(std::size_t node_count)
    : channels_(node_count),
      overflow_alloc_base_(node_count, 0),
      handlers_(node_count),
      recorders_(node_count),
      epoch_(std::chrono::steady_clock::now()) {
  for (stats::Recorder& r : recorders_) r.SetNodeCount(node_count);
}

void ChannelTransport::ResetStats() {
  MailboxTransport::ResetStats();
  for (std::size_t n = 0; n < channels_.size(); ++n)
    overflow_alloc_base_[n] = channels_[n].overflow_allocs();
}

void ChannelTransport::AugmentSnapshot(NodeId node,
                                       stats::Recorder& into) const {
  if (node >= channels_.size()) return;
  into.Bump(stats::Ev::kMailboxOverflowAllocs,
            channels_[node].overflow_allocs() - overflow_alloc_base_[node]);
}

void ChannelTransport::Send(NodeId src, NodeId dst, stats::MsgCat cat,
                            Buf payload) {
  HMDSM_CHECK(src < channels_.size() && dst < channels_.size());
  const std::size_t wire_bytes = payload.size() + kHeaderBytes;
  net::Packet packet{src, dst, cat, std::move(payload)};
  if (measure_dwell_) packet.enqueued_at = Now();
  if (src != dst) {
    recorders_[src].RecordMessage(cat, wire_bytes);
    recorders_[src].RecordSent(src, wire_bytes);
    packets_sent_.fetch_add(1, std::memory_order_acq_rel);
    if (inject_scale_ > 0) {
      // Self-sends stay immediate, matching the sim's free local delivery.
      packet.deliver_after =
          Now() + static_cast<sim::Time>(
                      static_cast<double>(inject_model_.Latency(wire_bytes)) *
                      inject_scale_);
    }
  }
  // Count before the push: once the packet is visible to the dispatcher,
  // enqueued() must already cover it, or AwaitQuiescence could observe
  // enqueued == dispatched with a packet still in flight.
  enqueued_.fetch_add(1, std::memory_order_acq_rel);
  channels_[dst].Push(std::move(packet));
}

void ChannelTransport::Dispatch(net::Packet&& packet) {
  Handler& handler = handlers_[packet.dst];
  HMDSM_CHECK_MSG(handler, "no handler registered for node " << packet.dst);
  if (packet.src != packet.dst) {
    recorders_[packet.dst].RecordReceived(
        packet.dst, packet.payload.size() + kHeaderBytes);
  }
  if (packet.enqueued_at > 0) {
    const sim::Time age = Now() - packet.enqueued_at;
    recorders_[packet.dst].RecordLatency(
        stats::Lat::kMailboxDwell,
        static_cast<std::uint64_t>(age > 0 ? age : 0));
  }
  handler(std::move(packet));
  // After the handler: anything it sent has already bumped enqueued_.
  dispatched_.fetch_add(1, std::memory_order_acq_rel);
}

}  // namespace hmdsm::runtime
