// The mailbox-transport seam between runtime::Runtime and a concrete
// message fabric.
//
// Runtime's dispatcher threads are fabric-agnostic: they block in WaitPop
// for the next packet addressed to a node this process hosts, honour the
// packet's injected delivery deadline, and then Dispatch it under the
// node's agent lock. Two fabrics implement the contract:
//
//   * runtime::ChannelTransport — the in-process threads backend: every
//     cluster node lives in this process and has its own mailbox.
//   * netio::SocketTransport — the multi-process sockets backend: exactly
//     one node (this process's rank) is local; remote nodes are reached
//     over TCP, and the reader threads feed received packets into the
//     local mailbox.
//
// The enqueued/dispatched counters cover every packet that enters a
// *local* mailbox (self-sends included); `enqueued() == dispatched()` with
// no local worker running means this process is locally quiescent. On the
// sockets backend that is only one conjunct of cluster quiescence — the
// netio coordinator combines it with matched wire counters across ranks.
#pragma once

#include "src/net/transport.h"

namespace hmdsm::runtime {

class MailboxTransport : public net::Transport {
 public:
  /// Blocks for the next packet addressed to `node` (which must be hosted
  /// by this process); returns false once the mailbox is closed.
  virtual bool WaitPop(net::NodeId node, net::Packet& out) = 0;

  /// Delivers one popped packet: receive-side accounting plus the
  /// registered handler. Must be called under the destination node's agent
  /// lock.
  virtual void Dispatch(net::Packet&& packet) = 0;

  /// Closes every locally hosted mailbox; dispatchers drain out of WaitPop
  /// with false.
  virtual void CloseAll() = 0;

  /// Packets pushed into / fully handled from local mailboxes so far.
  virtual std::uint64_t enqueued() const = 0;
  virtual std::uint64_t dispatched() const = 0;

  /// Blocks until `packet`'s injected delivery deadline (latency-injection
  /// fabrics only; default: deliver immediately).
  virtual void AwaitDeliveryTime(const net::Packet& packet) const {
    (void)packet;
  }

  /// Folds transport-level statistics that live outside the per-node
  /// recorders (wire-write counters, syscall-latency histograms kept by
  /// writer threads) into a snapshot of `node`'s recorder. Called by
  /// Runtime::SnapshotRecorder/Totals on the copy, never on the live
  /// recorder.
  virtual void AugmentSnapshot(net::NodeId node, stats::Recorder& into) const {
    (void)node;
    (void)into;
  }
};

}  // namespace hmdsm::runtime
