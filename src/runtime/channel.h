// In-process channel transport for the threads backend.
//
// Every node owns one mailbox (an MPSC channel: any node's thread may push,
// only the node's dispatcher pops). A message is one serialized proto::wire
// payload — exactly what the simulated network carries — so the protocol
// cannot tell the backends apart except through timing.
//
// Ordering: Agent code always sends while holding its own node's agent
// lock, so all pushes from one source node are serialized; each push
// appends atomically to the destination deque. Together that yields the
// per-sender FIFO the protocol relies on (the sim gets the same property
// from NIC transmit serialization). Self-sends go through the mailbox too,
// so a handler never runs re-entrantly inside the sender's call stack.
//
// Statistics: per-node recorders, send half recorded by the sender, receive
// half by the dispatcher at delivery (each under its node's agent lock).
// The enqueued/dispatched counters feed Runtime::AwaitQuiescence.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "src/net/transport.h"
#include "src/util/check.h"

namespace hmdsm::runtime {

using net::NodeId;

/// One node's mailbox: multi-producer, single-consumer (the dispatcher).
class Channel {
 public:
  void Push(net::Packet&& packet) {
    {
      std::lock_guard lock(mu_);
      HMDSM_CHECK_MSG(!closed_, "send on closed channel");
      q_.push_back(std::move(packet));
    }
    cv_.notify_one();
  }

  /// Blocks until a packet is available or the channel is closed. Returns
  /// false only when the channel is closed (remaining packets are dropped:
  /// close means the run is over).
  bool WaitPop(net::Packet& out) {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !q_.empty(); });
    if (closed_) return false;
    out = std::move(q_.front());
    q_.pop_front();
    return true;
  }

  void Close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<net::Packet> q_;
  bool closed_ = false;
};

/// The threads backend's Transport: wall clock, per-node mailboxes.
class ChannelTransport final : public net::Transport {
 public:
  explicit ChannelTransport(std::size_t node_count);

  std::size_t node_count() const override { return channels_.size(); }

  void SetHandler(NodeId node, Handler handler) override {
    HMDSM_CHECK(node < handlers_.size());
    handlers_[node] = std::move(handler);
  }

  /// Enqueues the packet into the destination mailbox. Called with the
  /// sender's node serialization in force (agent lock), which is what makes
  /// the per-node send accounting race-free.
  void Send(NodeId src, NodeId dst, stats::MsgCat cat,
            Bytes payload) override;

  /// Wall-clock nanoseconds since transport construction.
  sim::Time Now() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  stats::Recorder& RecorderFor(NodeId node) override {
    HMDSM_CHECK(node < recorders_.size());
    return recorders_[node];
  }
  const stats::Recorder& RecorderFor(NodeId node) const override {
    HMDSM_CHECK(node < recorders_.size());
    return recorders_[node];
  }

  // ---- dispatcher plumbing (Runtime's per-node threads) ----

  /// Blocks for the next packet addressed to `node`; false when closed.
  bool WaitPop(NodeId node, net::Packet& out) {
    HMDSM_CHECK(node < channels_.size());
    return channels_[node].WaitPop(out);
  }

  /// Delivers one popped packet: receive accounting plus the registered
  /// handler. Must be called under the destination node's agent lock.
  void Dispatch(net::Packet&& packet);

  /// Closes every mailbox; dispatchers drain out of WaitPop with false.
  void CloseAll() {
    for (Channel& c : channels_) c.Close();
  }

  /// Messages enqueued / fully handled so far. `enqueued() == dispatched()`
  /// while no worker is running means the cluster is quiescent (a handler
  /// increments `dispatched` only after it returns, and any message it sent
  /// bumped `enqueued` first).
  std::uint64_t enqueued() const {
    return enqueued_.load(std::memory_order_acquire);
  }
  std::uint64_t dispatched() const {
    return dispatched_.load(std::memory_order_acquire);
  }

  /// Total messages delivered so far (self-sends excluded).
  std::uint64_t packets_sent() const {
    return packets_sent_.load(std::memory_order_acquire);
  }

 private:
  std::deque<Channel> channels_;           // per node; deque: stable refs
  std::vector<Handler> handlers_;          // written before dispatch starts
  std::deque<stats::Recorder> recorders_;  // per node; deque: stable refs
  std::atomic<std::uint64_t> enqueued_{0};
  std::atomic<std::uint64_t> dispatched_{0};
  std::atomic<std::uint64_t> packets_sent_{0};
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace hmdsm::runtime
