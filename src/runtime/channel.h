// In-process channel transport for the threads backend.
//
// Every node owns one mailbox (an MPSC channel: any node's thread may push,
// only the node's dispatcher pops). The mailbox fast path is a bounded
// lock-free MPSC ring (MpscRing below) with a locked overflow deque behind
// it, so concurrent senders to a hot node do not serialize on a mutex. A
// message is one serialized proto::wire payload — exactly what the
// simulated network carries — so the protocol cannot tell the backends
// apart except through timing.
//
// Ordering: Agent code always sends while holding its own node's agent
// lock, so all pushes from one source node are serialized; each push
// claims a ring slot (or an overflow deque position) atomically, in a
// total order the consumer pops in. Together that yields the per-sender
// FIFO the protocol relies on (the sim gets the same property from NIC
// transmit serialization; Channel's comment argues the ring/overflow
// transitions). Self-sends go through the mailbox too, so a handler never
// runs re-entrantly inside the sender's call stack.
//
// Statistics: per-node recorders, send half recorded by the sender, receive
// half by the dispatcher at delivery (each under its node's agent lock).
// The enqueued/dispatched counters feed Runtime::AwaitQuiescence.
//
// Latency injection (optional): EnableLatencyInjection stamps every
// cross-node Send with a delivery deadline of Now() + scale *
// HockneyModel::Latency(wire bytes); the dispatcher holds each popped
// packet (AwaitDeliveryTime) until its deadline before delivering. The
// semantics are deadline-based, not cumulative sleep: packets queued
// behind a sleeping dispatcher age toward their own deadlines meanwhile,
// so same-size fan-in latencies overlap like the simulator's pipeline
// latencies. Delivery stays per-destination FIFO, though, so a small
// packet queued behind a large one inherits the larger deadline
// (head-of-line blocking — a receive-side serialization the simulator
// does not model; it bounds measured-vs-modeled fidelity for mixed-size
// fan-in). hol_inherited() counts exactly those packets — deliveries whose
// own deadline had already expired by the time the dispatcher reached them
// — so measured-vs-modeled divergence is attributable to a number, not a
// hunch. Statistics are untouched — injection shapes time, not traffic.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/net/hockney.h"
#include "src/runtime/mailbox_transport.h"
#include "src/util/check.h"

namespace hmdsm::runtime {

using net::NodeId;

/// Sleeps `dt` nanoseconds with sub-scheduler-jiffy accuracy: a coarse
/// sleep_for for the bulk, then a yield-spin to the deadline. Plain
/// sleep_for routinely overshoots by tens of microseconds — the same order
/// as a modeled message latency or compute delay, which would swamp
/// injected Hockney delays and Env::Compute sleeps.
void PreciseSleepFor(sim::Time dt);

/// Bounded lock-free multi-producer single-consumer packet ring (Vyukov
/// sequence-number scheme). Producers claim a slot with one CAS and publish
/// it with one release store; the consumer pops in claim order with plain
/// loads/stores — no mutex anywhere on the fast path. TryPush fails (never
/// blocks) when the ring is full; Channel falls back to its locked overflow
/// deque, so the protocol keeps its unbounded-mailbox semantics.
class MpscRing {
 public:
  explicit MpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_ = std::make_unique<Slot[]>(cap);
    for (std::size_t i = 0; i < cap; ++i)
      slots_[i].seq.store(i, std::memory_order_relaxed);
  }

  std::size_t capacity() const { return mask_ + 1; }

  /// Multi-producer. False when the ring is full; `packet` is untouched
  /// then (the caller still owns it).
  bool TryPush(net::Packet&& packet) {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const std::size_t seq = slot.seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::intptr_t>(seq) -
                       static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          slot.packet = std::move(packet);
          slot.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // full: a whole lap behind the consumer
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Single consumer. False when the next slot holds no published packet —
  /// either the ring is empty or a producer is mid-publish (Empty()
  /// distinguishes the two).
  bool TryPop(net::Packet& out) {
    Slot& slot = slots_[head_ & mask_];
    const std::size_t seq = slot.seq.load(std::memory_order_acquire);
    if (static_cast<std::intptr_t>(seq) -
            static_cast<std::intptr_t>(head_ + 1) < 0) {
      return false;
    }
    out = std::move(slot.packet);
    slot.packet = net::Packet{};  // drop the payload ref promptly
    slot.seq.store(head_ + mask_ + 1, std::memory_order_release);
    ++head_;
    return true;
  }

  /// Consumer-side: true when no producer has even *claimed* a slot ahead
  /// of the consumer. (!Empty() after a failed TryPop means a publish is in
  /// flight and will complete momentarily.)
  bool Empty() const {
    return tail_.load(std::memory_order_acquire) == head_;
  }

 private:
  struct Slot {
    std::atomic<std::size_t> seq{0};
    net::Packet packet;
  };

  std::unique_ptr<Slot[]> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> tail_{0};  // producers
  alignas(64) std::size_t head_ = 0;              // consumer only
};

/// One node's mailbox: multi-producer, single-consumer (the dispatcher).
///
/// Fast path is the lock-free MpscRing — a push is one CAS plus one release
/// store, so concurrent senders never serialize on a mailbox mutex. When
/// the ring fills, producers fall back to a locked overflow deque; once any
/// packet sits in overflow, *all* producers keep using it until the
/// consumer drains it, and the consumer always exhausts the ring before
/// touching overflow. Per-sender FIFO survives both transitions:
///   * ring -> overflow: a sender's earlier ring packets are popped (ring
///     is exhausted first) before its overflow packets;
///   * overflow -> ring: a sender re-enters the ring only after the
///     overflow is empty, i.e. its overflow packets were already popped.
///
/// The overflow queue is an intrusive singly-linked list whose nodes come
/// from a bounded free list, so a mailbox that oscillates across the
/// ring-full boundary stops allocating after warm-up — overflow bursts are
/// exactly the moments the allocator lock would hurt most. overflow_allocs()
/// counts the nodes that had to come from the allocator; steady state means
/// the counter stops moving.
class Channel {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 512;
  /// Free nodes kept for reuse; beyond this, pops release to the allocator.
  /// Sized to a few ring capacities: an overflow deeper than that is a
  /// sustained imbalance, not a burst worth holding memory for.
  static constexpr std::size_t kMaxFreeNodes = 1024;

  explicit Channel(std::size_t ring_capacity = kDefaultRingCapacity)
      : ring_(ring_capacity) {}

  ~Channel() {
    FreeList(ov_head_);
    FreeList(free_);
  }

  /// A push that starts after Close() throws "send on closed channel"; a
  /// push racing Close() may instead land and be dropped with the rest of
  /// the queue (identical to losing the same race against the old mutex —
  /// close drops all remaining packets either way).
  void Push(net::Packet&& packet) {
    HMDSM_CHECK_MSG(!closed_.load(std::memory_order_acquire),
                    "send on closed channel");
    if (overflow_active_.load(std::memory_order_acquire) ||
        !ring_.TryPush(std::move(packet))) {
      std::lock_guard lock(mu_);
      HMDSM_CHECK_MSG(!closed_.load(std::memory_order_relaxed),
                      "send on closed channel");
      OvNode* node = free_;
      if (node != nullptr) {
        free_ = node->next;
        --free_count_;
      } else {
        node = new OvNode;
        overflow_allocs_.fetch_add(1, std::memory_order_relaxed);
      }
      node->packet = std::move(packet);
      node->next = nullptr;
      if (ov_tail_ != nullptr) {
        ov_tail_->next = node;
      } else {
        ov_head_ = node;
      }
      ov_tail_ = node;
      overflow_active_.store(true, std::memory_order_release);
    }
    Knock();
  }

  /// Blocks until a packet is available or the channel is closed. Returns
  /// false only when the channel is closed (remaining packets are dropped:
  /// close means the run is over).
  ///
  /// Spin-then-block: protocol traffic is bursty request/response chains
  /// where the next packet typically lands within microseconds, while a
  /// condvar block costs a scheduler wake (tens of microseconds) — the same
  /// order as a modeled message latency, which would distort
  /// measured-vs-modeled comparisons. A short bounded spin absorbs the
  /// common case; idle dispatchers still park on the condvar.
  bool WaitPop(net::Packet& out) {
    const auto spin_deadline =
        std::chrono::steady_clock::now() + std::chrono::microseconds(20);
    do {
      if (closed_.load(std::memory_order_acquire)) return false;
      if (TryPop(out)) return true;
      std::this_thread::yield();
    } while (std::chrono::steady_clock::now() < spin_deadline);

    for (;;) {
      // Eventcount handshake with Knock(): the waiting_ store and the
      // producers' publish are both sequenced by seq_cst fences, so either
      // the TryPop below sees the packet or the producer sees waiting_ and
      // takes the mutex to notify. The timed wait is a pure backstop.
      waiting_.store(true, std::memory_order_seq_cst);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (TryPop(out)) {
        waiting_.store(false, std::memory_order_relaxed);
        return true;
      }
      {
        std::unique_lock lock(mu_);
        if (closed_.load(std::memory_order_relaxed)) {
          waiting_.store(false, std::memory_order_relaxed);
          return false;
        }
        if (ring_.Empty() && ov_head_ == nullptr) {
          cv_.wait_for(lock, std::chrono::milliseconds(10));
        }
      }
      waiting_.store(false, std::memory_order_relaxed);
    }
  }

  void Close() {
    {
      std::lock_guard lock(mu_);
      closed_.store(true, std::memory_order_release);
    }
    cv_.notify_all();
  }

  /// Overflow nodes that had to come from the allocator (free list empty).
  /// Flat after warm-up = allocation-free steady state.
  std::uint64_t overflow_allocs() const {
    return overflow_allocs_.load(std::memory_order_relaxed);
  }

 private:
  /// Single consumer: ring strictly first, overflow only once the ring is
  /// fully drained (see the class comment for why that ordering is what
  /// preserves per-sender FIFO).
  bool TryPop(net::Packet& out) {
    for (;;) {
      if (ring_.TryPop(out)) return true;
      if (ring_.Empty()) break;
      // A producer claimed the head slot but has not published it yet.
      // Everything in overflow is newer than that claim, so skipping ahead
      // would reorder; spin the publish out instead (it is two machine
      // stores away).
      std::this_thread::yield();
    }
    if (!overflow_active_.load(std::memory_order_acquire)) return false;
    std::lock_guard lock(mu_);
    if (ov_head_ == nullptr) return false;
    OvNode* node = ov_head_;
    ov_head_ = node->next;
    if (ov_head_ == nullptr) {
      ov_tail_ = nullptr;
      overflow_active_.store(false, std::memory_order_release);
    }
    out = std::move(node->packet);
    node->packet = net::Packet{};  // drop the payload ref promptly
    if (free_count_ < kMaxFreeNodes) {
      node->next = free_;
      free_ = node;
      ++free_count_;
    } else {
      delete node;
    }
    return true;
  }

  /// Producer-side wake: only touches the mutex when the consumer is
  /// (about to be) parked, so the hot path stays lock-free.
  void Knock() {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (waiting_.load(std::memory_order_seq_cst)) {
      std::lock_guard lock(mu_);
      cv_.notify_one();
    }
  }

  struct OvNode {
    net::Packet packet;
    OvNode* next = nullptr;
  };

  static void FreeList(OvNode* node) {
    while (node != nullptr) {
      OvNode* next = node->next;
      delete node;
      node = next;
    }
  }

  MpscRing ring_;
  std::atomic<bool> closed_{false};
  std::atomic<bool> overflow_active_{false};
  std::atomic<bool> waiting_{false};
  mutable std::mutex mu_;  // overflow list + free list + eventcount sleep
  std::condition_variable cv_;
  OvNode* ov_head_ = nullptr;  // FIFO overflow queue
  OvNode* ov_tail_ = nullptr;
  OvNode* free_ = nullptr;  // recycled nodes, bounded by kMaxFreeNodes
  std::size_t free_count_ = 0;
  std::atomic<std::uint64_t> overflow_allocs_{0};
};

/// The threads backend's Transport: wall clock, per-node mailboxes.
class ChannelTransport final : public MailboxTransport {
 public:
  explicit ChannelTransport(std::size_t node_count);

  std::size_t node_count() const override { return channels_.size(); }

  void SetHandler(NodeId node, Handler handler) override {
    HMDSM_CHECK(node < handlers_.size());
    handlers_[node] = std::move(handler);
  }

  /// Enqueues the packet into the destination mailbox. Called with the
  /// sender's node serialization in force (agent lock), which is what makes
  /// the per-node send accounting race-free.
  void Send(NodeId src, NodeId dst, stats::MsgCat cat, Buf payload) override;

  /// Enables wall-clock latency injection (see file comment). `scale`
  /// multiplies the modeled latency; <= 0 disables injection entirely.
  /// Call before traffic starts flowing.
  void EnableLatencyInjection(const net::HockneyModel& model, double scale) {
    inject_model_ = model;
    inject_scale_ = scale;
  }
  bool latency_injection_enabled() const { return inject_scale_ > 0; }

  /// Enables the enqueue→dispatch dwell histogram: Send stamps every packet
  /// with Now() and Dispatch records the age under the destination's agent
  /// lock. Off by default — the stamp is the one per-packet clock read on
  /// the hot path, so histogram-off runs pay nothing. Call before traffic
  /// starts flowing.
  void EnableDwellMeasurement() { measure_dwell_ = true; }
  bool dwell_measurement_enabled() const { return measure_dwell_; }

  /// Blocks until `packet`'s injected delivery deadline. No-op when
  /// injection is off or the deadline already passed — but an
  /// already-passed deadline means the packet waited behind an earlier
  /// (larger) packet's sleep and effectively inherited its delivery time,
  /// so it is counted in hol_inherited(). Dispatchers call this after
  /// popping and *before* taking the destination agent lock, so a sleeping
  /// delivery never blocks the node's guests.
  void AwaitDeliveryTime(const net::Packet& packet) const override {
    if (packet.deliver_after <= 0) return;
    const sim::Time wait = packet.deliver_after - Now();
    if (wait > 0) {
      PreciseSleepFor(wait);
    } else {
      hol_inherited_.fetch_add(1, std::memory_order_acq_rel);
    }
  }

  /// Latency injection only: packets delivered *after* their own injected
  /// deadline because the dispatcher was busy sleeping out an earlier
  /// packet's (head-of-line) deadline. The modeled network pipelines these
  /// deliveries instead, so this counter bounds how far a measured run can
  /// diverge from the model on mixed-size fan-in.
  std::uint64_t hol_inherited() const {
    return hol_inherited_.load(std::memory_order_acquire);
  }

  /// Wall-clock nanoseconds since transport construction.
  sim::Time Now() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  stats::Recorder& RecorderFor(NodeId node) override {
    HMDSM_CHECK(node < recorders_.size());
    return recorders_[node];
  }
  const stats::Recorder& RecorderFor(NodeId node) const override {
    HMDSM_CHECK(node < recorders_.size());
    return recorders_[node];
  }

  // ---- dispatcher plumbing (Runtime's per-node threads) ----

  /// Blocks for the next packet addressed to `node`; false when closed.
  bool WaitPop(NodeId node, net::Packet& out) override {
    HMDSM_CHECK(node < channels_.size());
    return channels_[node].WaitPop(out);
  }

  /// Delivers one popped packet: receive accounting plus the registered
  /// handler. Must be called under the destination node's agent lock.
  void Dispatch(net::Packet&& packet) override;

  /// Closes every mailbox; dispatchers drain out of WaitPop with false.
  void CloseAll() override {
    for (Channel& c : channels_) c.Close();
  }

  /// Messages enqueued / fully handled so far. `enqueued() == dispatched()`
  /// while no worker is running means the cluster is quiescent (a handler
  /// increments `dispatched` only after it returns, and any message it sent
  /// bumped `enqueued` first).
  std::uint64_t enqueued() const override {
    return enqueued_.load(std::memory_order_acquire);
  }
  std::uint64_t dispatched() const override {
    return dispatched_.load(std::memory_order_acquire);
  }

  /// Total messages delivered so far (self-sends excluded).
  std::uint64_t packets_sent() const {
    return packets_sent_.load(std::memory_order_acquire);
  }

  /// Also snapshots per-mailbox overflow-alloc baselines, so the measured
  /// window reports only steady-state allocations (which should be zero —
  /// the whole point of the node pool).
  void ResetStats() override;

  /// Folds the mailbox overflow-alloc counter into `node`'s snapshot.
  void AugmentSnapshot(net::NodeId node, stats::Recorder& into) const override;

 private:
  std::deque<Channel> channels_;           // per node; deque: stable refs
  std::vector<std::uint64_t> overflow_alloc_base_;  // ResetStats snapshots
  std::vector<Handler> handlers_;          // written before dispatch starts
  std::deque<stats::Recorder> recorders_;  // per node; deque: stable refs
  std::atomic<std::uint64_t> enqueued_{0};
  std::atomic<std::uint64_t> dispatched_{0};
  std::atomic<std::uint64_t> packets_sent_{0};
  mutable std::atomic<std::uint64_t> hol_inherited_{0};
  std::chrono::steady_clock::time_point epoch_;
  net::HockneyModel inject_model_{70.0, 12.5};  // written before dispatch
  double inject_scale_ = 0.0;                   // starts; read-only after
  bool measure_dwell_ = false;                  // ditto
};

}  // namespace hmdsm::runtime
