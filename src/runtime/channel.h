// In-process channel transport for the threads backend.
//
// Every node owns one mailbox (an MPSC channel: any node's thread may push,
// only the node's dispatcher pops). A message is one serialized proto::wire
// payload — exactly what the simulated network carries — so the protocol
// cannot tell the backends apart except through timing.
//
// Ordering: Agent code always sends while holding its own node's agent
// lock, so all pushes from one source node are serialized; each push
// appends atomically to the destination deque. Together that yields the
// per-sender FIFO the protocol relies on (the sim gets the same property
// from NIC transmit serialization). Self-sends go through the mailbox too,
// so a handler never runs re-entrantly inside the sender's call stack.
//
// Statistics: per-node recorders, send half recorded by the sender, receive
// half by the dispatcher at delivery (each under its node's agent lock).
// The enqueued/dispatched counters feed Runtime::AwaitQuiescence.
//
// Latency injection (optional): EnableLatencyInjection stamps every
// cross-node Send with a delivery deadline of Now() + scale *
// HockneyModel::Latency(wire bytes); the dispatcher holds each popped
// packet (AwaitDeliveryTime) until its deadline before delivering. The
// semantics are deadline-based, not cumulative sleep: packets queued
// behind a sleeping dispatcher age toward their own deadlines meanwhile,
// so same-size fan-in latencies overlap like the simulator's pipeline
// latencies. Delivery stays per-destination FIFO, though, so a small
// packet queued behind a large one inherits the larger deadline
// (head-of-line blocking — a receive-side serialization the simulator
// does not model; it bounds measured-vs-modeled fidelity for mixed-size
// fan-in). Statistics are untouched — injection shapes time, not traffic.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "src/net/hockney.h"
#include "src/runtime/mailbox_transport.h"
#include "src/util/check.h"

namespace hmdsm::runtime {

using net::NodeId;

/// Sleeps `dt` nanoseconds with sub-scheduler-jiffy accuracy: a coarse
/// sleep_for for the bulk, then a yield-spin to the deadline. Plain
/// sleep_for routinely overshoots by tens of microseconds — the same order
/// as a modeled message latency or compute delay, which would swamp
/// injected Hockney delays and Env::Compute sleeps.
void PreciseSleepFor(sim::Time dt);

/// One node's mailbox: multi-producer, single-consumer (the dispatcher).
class Channel {
 public:
  void Push(net::Packet&& packet) {
    {
      std::lock_guard lock(mu_);
      HMDSM_CHECK_MSG(!closed_, "send on closed channel");
      q_.push_back(std::move(packet));
    }
    cv_.notify_one();
  }

  /// Blocks until a packet is available or the channel is closed. Returns
  /// false only when the channel is closed (remaining packets are dropped:
  /// close means the run is over).
  ///
  /// Spin-then-block: protocol traffic is bursty request/response chains
  /// where the next packet typically lands within microseconds, while a
  /// condvar block costs a scheduler wake (tens of microseconds) — the same
  /// order as a modeled message latency, which would distort
  /// measured-vs-modeled comparisons. A short bounded spin absorbs the
  /// common case; idle dispatchers still park on the condvar.
  bool WaitPop(net::Packet& out) {
    const auto spin_deadline =
        std::chrono::steady_clock::now() + std::chrono::microseconds(20);
    do {
      {
        std::lock_guard lock(mu_);
        if (closed_) return false;
        if (!q_.empty()) {
          out = std::move(q_.front());
          q_.pop_front();
          return true;
        }
      }
      std::this_thread::yield();
    } while (std::chrono::steady_clock::now() < spin_deadline);

    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !q_.empty(); });
    if (closed_) return false;
    out = std::move(q_.front());
    q_.pop_front();
    return true;
  }

  void Close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<net::Packet> q_;
  bool closed_ = false;
};

/// The threads backend's Transport: wall clock, per-node mailboxes.
class ChannelTransport final : public MailboxTransport {
 public:
  explicit ChannelTransport(std::size_t node_count);

  std::size_t node_count() const override { return channels_.size(); }

  void SetHandler(NodeId node, Handler handler) override {
    HMDSM_CHECK(node < handlers_.size());
    handlers_[node] = std::move(handler);
  }

  /// Enqueues the packet into the destination mailbox. Called with the
  /// sender's node serialization in force (agent lock), which is what makes
  /// the per-node send accounting race-free.
  void Send(NodeId src, NodeId dst, stats::MsgCat cat,
            Bytes payload) override;

  /// Enables wall-clock latency injection (see file comment). `scale`
  /// multiplies the modeled latency; <= 0 disables injection entirely.
  /// Call before traffic starts flowing.
  void EnableLatencyInjection(const net::HockneyModel& model, double scale) {
    inject_model_ = model;
    inject_scale_ = scale;
  }
  bool latency_injection_enabled() const { return inject_scale_ > 0; }

  /// Blocks until `packet`'s injected delivery deadline. No-op when
  /// injection is off or the deadline already passed. Dispatchers call this
  /// after popping and *before* taking the destination agent lock, so a
  /// sleeping delivery never blocks the node's guests.
  void AwaitDeliveryTime(const net::Packet& packet) const override {
    if (packet.deliver_after > 0) PreciseSleepFor(packet.deliver_after - Now());
  }

  /// Wall-clock nanoseconds since transport construction.
  sim::Time Now() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  stats::Recorder& RecorderFor(NodeId node) override {
    HMDSM_CHECK(node < recorders_.size());
    return recorders_[node];
  }
  const stats::Recorder& RecorderFor(NodeId node) const override {
    HMDSM_CHECK(node < recorders_.size());
    return recorders_[node];
  }

  // ---- dispatcher plumbing (Runtime's per-node threads) ----

  /// Blocks for the next packet addressed to `node`; false when closed.
  bool WaitPop(NodeId node, net::Packet& out) override {
    HMDSM_CHECK(node < channels_.size());
    return channels_[node].WaitPop(out);
  }

  /// Delivers one popped packet: receive accounting plus the registered
  /// handler. Must be called under the destination node's agent lock.
  void Dispatch(net::Packet&& packet) override;

  /// Closes every mailbox; dispatchers drain out of WaitPop with false.
  void CloseAll() override {
    for (Channel& c : channels_) c.Close();
  }

  /// Messages enqueued / fully handled so far. `enqueued() == dispatched()`
  /// while no worker is running means the cluster is quiescent (a handler
  /// increments `dispatched` only after it returns, and any message it sent
  /// bumped `enqueued` first).
  std::uint64_t enqueued() const override {
    return enqueued_.load(std::memory_order_acquire);
  }
  std::uint64_t dispatched() const override {
    return dispatched_.load(std::memory_order_acquire);
  }

  /// Total messages delivered so far (self-sends excluded).
  std::uint64_t packets_sent() const {
    return packets_sent_.load(std::memory_order_acquire);
  }

 private:
  std::deque<Channel> channels_;           // per node; deque: stable refs
  std::vector<Handler> handlers_;          // written before dispatch starts
  std::deque<stats::Recorder> recorders_;  // per node; deque: stable refs
  std::atomic<std::uint64_t> enqueued_{0};
  std::atomic<std::uint64_t> dispatched_{0};
  std::atomic<std::uint64_t> packets_sent_{0};
  std::chrono::steady_clock::time_point epoch_;
  net::HockneyModel inject_model_{70.0, 12.5};  // written before dispatch
  double inject_scale_ = 0.0;                   // starts; read-only after
};

}  // namespace hmdsm::runtime
