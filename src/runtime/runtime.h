// The multi-threaded execution backend: the DSM protocol on real OS
// threads instead of the discrete-event simulator.
//
// Topology mirrors the simulator exactly — one dsm::Agent per node — but
// execution is real:
//
//   * every node has a *dispatcher* std::thread draining its mailbox and
//     running the agent's message handlers;
//   * application workers are plain std::threads that enter the blocking
//     Agent API through a Guest context bound to one node;
//   * one mutex per node (the "agent lock") serializes all access to that
//     node's Agent — dispatcher and guests alike. Guest::Park releases the
//     lock while blocked (condition-variable style), which is the threads
//     equivalent of the simulator's single-baton handoff;
//   * the clock is the wall clock.
//
// Protocol races that the simulator schedules deterministically — migration
// decisions racing fault-ins, redirect chains racing chain updates, lock
// handoffs racing diff flushes — happen here under genuine concurrency.
// Data integrity must not depend on the interleaving: the cross-backend
// tests assert that a scenario's checksum is identical on both backends.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/dsm/agent.h"
#include "src/dsm/config.h"
#include "src/runtime/channel.h"
#include "src/runtime/exec.h"

namespace hmdsm::runtime {

struct RuntimeOptions {
  std::size_t nodes = 8;
  dsm::DsmConfig dsm;
  /// Interconnect model used for latency injection (callers typically also
  /// derive the adaptive policy's α from it, as dsm::Cluster does).
  net::HockneyModel model{70.0, 12.5};
  /// > 0 enables wall-clock latency injection: each cross-node delivery is
  /// held until send-time + model.Latency(wire bytes) * this scale, so the
  /// measured run reproduces the modeled network regime (see channel.h).
  double inject_latency_scale = 0.0;
  /// Event sink shared by every hosted agent (nullptr: tracing off). The
  /// caller owns it and must keep it alive for the Runtime's lifetime.
  trace::Trace* trace = nullptr;
  /// In-process mode: enable the mailbox enqueue→dispatch dwell histogram
  /// (one clock read per packet on the send path when on). The sockets
  /// backend has its own knob (SocketTransportOptions::measure_latency).
  bool measure_dwell = false;
};

class Guest;

/// A cluster of agents on real threads. One instance per run.
///
/// Two hosting modes share the same dispatcher/guest machinery:
///   * in-process (threads backend): the Runtime owns a ChannelTransport
///     and hosts every cluster node — one agent + dispatcher per node;
///   * external transport (sockets backend): the caller supplies a
///     MailboxTransport (netio::SocketTransport) and the Runtime hosts the
///     given set of local ranks — one agent + dispatcher each; the other
///     ranks live in other OS processes reached over the wire.
class Runtime {
 public:
  explicit Runtime(RuntimeOptions options);
  /// External-transport mode: host `local_nodes` of the cluster behind
  /// `transport` (which the caller owns and must outlive this Runtime) —
  /// one agent + dispatcher per hosted node; the remaining ranks live in
  /// other OS processes reached over the wire. Latency injection is the
  /// channel transport's feature — rejected here.
  Runtime(RuntimeOptions options, MailboxTransport& transport,
          std::vector<dsm::NodeId> local_nodes);
  /// Single-rank convenience overload (one hosted node per process).
  Runtime(RuntimeOptions options, MailboxTransport& transport,
          dsm::NodeId local_node);
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  std::size_t nodes() const { return cells_.size(); }
  const RuntimeOptions& options() const { return options_; }
  /// The owned channel transport (in-process mode only; CHECKs otherwise).
  ChannelTransport& transport() {
    HMDSM_CHECK_MSG(owned_transport_ != nullptr,
                    "transport() needs the in-process channel mode");
    return *owned_transport_;
  }
  MailboxTransport& mailbox() { return transport_; }

  /// True when this process hosts `node`'s agent (always, in-process).
  bool hosts(dsm::NodeId node) const {
    return node < cells_.size() && cells_[node] != nullptr;
  }

  /// Copy of a hosted node's recorder, taken under its agent lock (so it is
  /// consistent even against a straggling handler).
  stats::Recorder SnapshotRecorder(dsm::NodeId node) const;

  /// Fresh identifiers, allocated centrally like dsm::Cluster's (identical
  /// sequences, so a scenario materializes the same ids on both backends).
  /// Call from the coordinating thread only.
  dsm::ObjectId NewObjectId(dsm::NodeId initial_home, dsm::NodeId creator);
  dsm::LockId NewLockId(dsm::NodeId manager);
  dsm::BarrierId NewBarrierId(dsm::NodeId manager);

  /// Blocks until no message is in flight or being handled. Callable only
  /// while no application worker is running (workers could always send
  /// more); with workers joined, dispatchers are the only senders and they
  /// only send from inside handlers. In external-transport mode this is
  /// *local* quiescence only — cluster-wide quiescence additionally needs
  /// the wire counters matched across ranks (netio::Coordinator).
  void AwaitQuiescence();

  /// Starts the measured window: drains in-flight traffic, zeroes every
  /// per-node recorder, marks the wall clock.
  void ResetMeasurement();

  /// Wall-clock seconds since the last ResetMeasurement().
  double ElapsedSeconds() const;

  /// Merged per-node statistics. Takes every agent lock, so it is safe
  /// (and consistent) even while traffic is in flight.
  stats::Recorder Totals() const;

  /// Closes one time-series window on every hosted node's recorder: each
  /// local node gets a counter-delta Sample stamped with the transport
  /// clock (under its agent lock). Returns true if any node's counters
  /// moved since the previous call. The first call only primes baselines.
  bool SampleTimeseries();

  /// Closes the mailboxes and joins the dispatcher threads. Idempotent;
  /// the destructor calls it. All guests must be done first.
  void Shutdown();

 private:
  friend class Guest;

  /// One node: the agent plus the lock that serializes all access to it.
  struct NodeCell {
    mutable std::mutex mu;
    std::unique_ptr<dsm::Agent> agent;
  };

  NodeCell& cell(dsm::NodeId node) {
    HMDSM_CHECK_MSG(hosts(node), "node " << node << " is not hosted by this "
                                            "process");
    return *cells_[node];
  }

  void Init();
  void DispatchLoop(dsm::NodeId node);

  RuntimeOptions options_;
  std::unique_ptr<ChannelTransport> owned_transport_;  // in-process mode
  MailboxTransport& transport_;
  std::vector<dsm::NodeId> local_nodes_;  // nodes hosted by this process
  std::vector<std::unique_ptr<NodeCell>> cells_;  // indexed by node id
  std::vector<std::thread> dispatchers_;
  bool shut_down_ = false;
  sim::Time measure_start_ = 0;  // transport Now() at ResetMeasurement
  std::uint32_t next_object_seq_ = 1;
  std::uint64_t next_lock_seq_ = 1;
  std::uint64_t next_barrier_seq_ = 1;
};

/// A real-thread execution context bound to one node — the threads
/// backend's counterpart of (gos::Env + sim::Process). Each std::thread
/// that wants to touch the DSM creates its own Guest; the blocking ops
/// take the node's agent lock for the duration of the call, and Park
/// releases it while waiting (so the dispatcher can run the handlers that
/// will eventually Unpark us).
class Guest final : public Exec {
 public:
  Guest(Runtime& rt, dsm::NodeId node, std::string name = {});

  dsm::NodeId node() const { return node_; }
  const std::string& name() const { return name_; }
  dsm::Agent& agent() { return *rt_.cell(node_).agent; }

  // ---- blocking DSM operations (mirror gos::Env) ----

  void CreateObject(dsm::ObjectId obj, ByteSpan initial);
  void Read(dsm::ObjectId obj, const std::function<void(ByteSpan)>& fn);
  void Write(dsm::ObjectId obj, const std::function<void(MutByteSpan)>& fn);
  void Acquire(dsm::LockId lock);
  void Release(dsm::LockId lock);
  void Barrier(dsm::BarrierId barrier, std::uint32_t expected);
  /// Arms this node's adaptation-latency clock (non-blocking).
  void MarkPhase();

  // ---- Exec ----

  /// Wall-clock sleep. Callable only outside the blocking ops above.
  void Delay(sim::Time dt) override;
  std::uint64_t Park() override;
  void Unpark(std::uint64_t token = 0) override;

 private:
  /// Runs `fn(agent)` under the node's agent lock, exposing the lock to
  /// Park for the duration.
  template <typename Fn>
  void WithAgent(Fn&& fn);

  Runtime& rt_;
  dsm::NodeId node_;
  std::string name_;
  // Park/Unpark state; guarded by the node's agent lock.
  std::unique_lock<std::mutex>* active_lock_ = nullptr;
  std::condition_variable cv_;
  bool parked_ = false;
  bool notified_ = false;
  std::uint64_t token_ = 0;
};

}  // namespace hmdsm::runtime
