#include "src/runtime/runtime.h"

#include <chrono>
#include <utility>

namespace hmdsm::runtime {

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

Runtime::Runtime(RuntimeOptions options)
    : options_(std::move(options)),
      owned_transport_(std::make_unique<ChannelTransport>(options_.nodes)),
      transport_(*owned_transport_) {
  if (options_.inject_latency_scale > 0) {
    owned_transport_->EnableLatencyInjection(options_.model,
                                             options_.inject_latency_scale);
  }
  if (options_.measure_dwell) owned_transport_->EnableDwellMeasurement();
  local_nodes_.reserve(options_.nodes);
  for (dsm::NodeId n = 0; n < options_.nodes; ++n) local_nodes_.push_back(n);
  Init();
}

Runtime::Runtime(RuntimeOptions options, MailboxTransport& transport,
                 std::vector<dsm::NodeId> local_nodes)
    : options_(std::move(options)), transport_(transport) {
  HMDSM_CHECK_MSG(transport_.node_count() == options_.nodes,
                  "external transport sized for " << transport_.node_count()
                                                  << " nodes, options say "
                                                  << options_.nodes);
  HMDSM_CHECK_MSG(options_.inject_latency_scale <= 0,
                  "latency injection is the channel transport's feature");
  HMDSM_CHECK_MSG(!local_nodes.empty(), "a process must host at least one "
                                        "rank");
  for (const dsm::NodeId n : local_nodes) HMDSM_CHECK(n < options_.nodes);
  local_nodes_ = std::move(local_nodes);
  Init();
}

Runtime::Runtime(RuntimeOptions options, MailboxTransport& transport,
                 dsm::NodeId local_node)
    : Runtime(std::move(options), transport,
              std::vector<dsm::NodeId>{local_node}) {}

void Runtime::Init() {
  HMDSM_CHECK_MSG(options_.nodes >= 1 && options_.nodes <= 0x10000,
                  "node count out of range");
  cells_.resize(options_.nodes);
  for (dsm::NodeId n : local_nodes_) {
    auto cell = std::make_unique<NodeCell>();
    cell->agent = std::make_unique<dsm::Agent>(n, transport_, options_.dsm,
                                               options_.trace);
    cells_[n] = std::move(cell);
  }
  // Handlers are all registered (agent constructors); only now may traffic
  // start flowing, so the dispatcher threads start last.
  dispatchers_.reserve(local_nodes_.size());
  for (dsm::NodeId n : local_nodes_)
    dispatchers_.emplace_back([this, n] { DispatchLoop(n); });
}

Runtime::~Runtime() { Shutdown(); }

void Runtime::DispatchLoop(dsm::NodeId node) {
  net::Packet packet;
  while (transport_.WaitPop(node, packet)) {
    // Injected Hockney delay first, outside the agent lock: a delivery
    // sleeping toward its deadline must not block the node's guests.
    transport_.AwaitDeliveryTime(packet);
    // The agent lock serializes this handler against the node's guests
    // (and is the lock their Park waits release).
    std::lock_guard lock(cells_[node]->mu);
    transport_.Dispatch(std::move(packet));
  }
}

dsm::ObjectId Runtime::NewObjectId(dsm::NodeId initial_home,
                                   dsm::NodeId creator) {
  return dsm::ObjectId::Make(initial_home, creator, next_object_seq_++);
}

dsm::LockId Runtime::NewLockId(dsm::NodeId manager) {
  return dsm::LockId::Make(manager, next_lock_seq_++);
}

dsm::BarrierId Runtime::NewBarrierId(dsm::NodeId manager) {
  return dsm::BarrierId::Make(manager, next_barrier_seq_++);
}

void Runtime::AwaitQuiescence() {
  for (;;) {
    // Order matters: read dispatched first. If both reads then agree, every
    // enqueued message had completed its handler at the time of the second
    // read — a handler still running would hold dispatched below enqueued,
    // and any message it sends bumps enqueued before it finishes.
    const std::uint64_t dispatched = transport_.dispatched();
    const std::uint64_t enqueued = transport_.enqueued();
    if (dispatched == enqueued) {
      // One confirmation pass after a yield, guarding against a dispatcher
      // between "popped the packet" and "ran the handler".
      std::this_thread::yield();
      if (transport_.dispatched() == dispatched &&
          transport_.enqueued() == dispatched) {
        return;
      }
      continue;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

void Runtime::ResetMeasurement() {
  AwaitQuiescence();
  for (dsm::NodeId n : local_nodes_) {
    // The lock both serializes against any straggling handler and gives the
    // reset visibility to the node's future recorder writes.
    std::lock_guard lock(cells_[n]->mu);
  }
  transport_.ResetStats();
  measure_start_ = transport_.Now();
  // Prime the sampling cursors at the measured window's start: even a run
  // shorter than one poll interval then yields one full-run sample per node
  // when the final gather closes the window.
  SampleTimeseries();
}

double Runtime::ElapsedSeconds() const {
  return sim::ToSeconds(transport_.Now() - measure_start_);
}

stats::Recorder Runtime::Totals() const {
  stats::Recorder total;
  total.SetNodeCount(cells_.size());
  for (dsm::NodeId n : local_nodes_) {
    stats::Recorder snap;
    {
      std::lock_guard lock(cells_[n]->mu);
      snap = transport_.RecorderFor(n);
    }
    // Transport extras (wire counters, write-latency histograms) fold into
    // the snapshot outside the agent lock — they have their own guards.
    transport_.AugmentSnapshot(n, snap);
    total.Merge(snap);
  }
  return total;
}

bool Runtime::SampleTimeseries() {
  if (!options_.dsm.audit) return false;  // --audit=0 opts the sampler out
  bool moved = false;
  const sim::Time now = transport_.Now();
  for (dsm::NodeId n : local_nodes_) {
    // Same serialization as Totals(): the node's recorder is only ever
    // mutated under its agent lock, and the sampler is one more mutator.
    std::lock_guard lock(cells_[n]->mu);
    if (transport_.RecorderFor(n).SampleTimeseries(n, now)) moved = true;
  }
  return moved;
}

stats::Recorder Runtime::SnapshotRecorder(dsm::NodeId node) const {
  HMDSM_CHECK(node < cells_.size() && cells_[node] != nullptr);
  stats::Recorder snap;
  {
    std::lock_guard lock(cells_[node]->mu);
    snap = transport_.RecorderFor(node);
  }
  transport_.AugmentSnapshot(node, snap);
  return snap;
}

void Runtime::Shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  // Drain before closing: a blocking op that just returned (a fault-in, a
  // lock release) can leave follow-on traffic in flight — a migration
  // notification, a forwarded diff — and the dispatcher handling it would
  // otherwise send into a closed mailbox. With guests idle, quiescence
  // means no handler is running and none will send again.
  AwaitQuiescence();
  transport_.CloseAll();
  for (std::thread& t : dispatchers_) t.join();
}

// ---------------------------------------------------------------------------
// Guest
// ---------------------------------------------------------------------------

Guest::Guest(Runtime& rt, dsm::NodeId node, std::string name)
    : rt_(rt), node_(node), name_(std::move(name)) {
  HMDSM_CHECK(node < rt_.nodes());
  if (name_.empty()) name_ = "guest@n" + std::to_string(node);
}

template <typename Fn>
void Guest::WithAgent(Fn&& fn) {
  Runtime::NodeCell& cell = rt_.cell(node_);
  std::unique_lock<std::mutex> lock(cell.mu);
  active_lock_ = &lock;
  struct Clear {  // reset even if the protocol CHECK-throws
    Guest* g;
    ~Clear() { g->active_lock_ = nullptr; }
  } clear{this};
  fn(*cell.agent);
}

void Guest::CreateObject(dsm::ObjectId obj, ByteSpan initial) {
  WithAgent([&](dsm::Agent& a) { a.CreateObject(*this, obj, initial); });
}

void Guest::Read(dsm::ObjectId obj,
                 const std::function<void(ByteSpan)>& fn) {
  WithAgent([&](dsm::Agent& a) { a.Read(*this, obj, fn); });
}

void Guest::Write(dsm::ObjectId obj,
                  const std::function<void(MutByteSpan)>& fn) {
  WithAgent([&](dsm::Agent& a) { a.Write(*this, obj, fn); });
}

void Guest::Acquire(dsm::LockId lock) {
  WithAgent([&](dsm::Agent& a) { a.Acquire(*this, lock); });
}

void Guest::Release(dsm::LockId lock) {
  WithAgent([&](dsm::Agent& a) { a.Release(*this, lock); });
}

void Guest::Barrier(dsm::BarrierId barrier, std::uint32_t expected) {
  WithAgent([&](dsm::Agent& a) { a.Barrier(*this, barrier, expected); });
}

void Guest::MarkPhase() {
  WithAgent([&](dsm::Agent& a) { a.MarkPhase(); });
}

void Guest::Delay(sim::Time dt) {
  HMDSM_CHECK_MSG(active_lock_ == nullptr,
                  "Delay inside an agent call in guest '" << name_ << "'");
  HMDSM_CHECK_MSG(dt >= 0, "negative delay in guest '" << name_ << "'");
  // Precise, not plain sleep_for: modeled compute delays are often a few
  // microseconds, and coarse-sleep overshoot would dwarf them (breaking the
  // measured-vs-modeled comparison latency injection exists for).
  PreciseSleepFor(dt);
}

std::uint64_t Guest::Park() {
  HMDSM_CHECK_MSG(active_lock_ != nullptr && active_lock_->owns_lock(),
                  "Park outside an agent call in guest '" << name_ << "'");
  HMDSM_CHECK(!parked_);
  parked_ = true;
  // Releases the agent lock while waiting — the dispatcher takes over the
  // node, exactly like the simulator's baton handoff to the kernel.
  cv_.wait(*active_lock_, [&] { return notified_; });
  parked_ = false;
  notified_ = false;
  return token_;
}

void Guest::Unpark(std::uint64_t token) {
  // Caller holds this node's agent lock (handlers and guests only run
  // under it), which is what makes this state change safe.
  HMDSM_CHECK_MSG(parked_ && !notified_,
                  "unparking guest '" << name_ << "' that is not parked");
  token_ = token;
  notified_ = true;
  cv_.notify_one();
}

}  // namespace hmdsm::runtime
