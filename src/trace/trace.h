// Protocol event tracing.
//
// An optional, zero-cost-when-disabled event sink the DSM agents feed with
// coherence-protocol events (fault-ins, diffs, migrations, redirects, lock
// transfers). Used by tests to assert event orderings, by examples to
// narrate a run, and by developers to debug protocol changes.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "src/dsm/types.h"
#include "src/sim/time.h"

namespace hmdsm::trace {

enum class What : std::uint8_t {
  kObjectCreated,
  kFaultIn,        // request sent (node = requester, peer = target)
  kServeRequest,   // served at home (node = home, peer = requester)
  kRedirected,     // redirect reply (node = obsolete home, peer = requester)
  kDiffSent,       // standalone diff (node = writer, peer = target)
  kDiffApplied,    // at home (node = home, peer = writer)
  kMigrated,       // home transfer (node = old home, peer = new home)
  kHomeInstalled,  // migration reply installed (node = new home)
  kLockGranted,    // manager granted (node = manager, peer = holder)
  kBarrierDone,    // barrier released (node = manager)
};

std::string_view WhatName(What what);

/// One trace record. `value` is event-specific: hops for kRedirected /
/// kServeRequest, diff bytes for diff events, live threshold (scaled by
/// 1000) for kMigrated.
struct Event {
  sim::Time at = 0;
  What what = What::kFaultIn;
  dsm::NodeId node = 0;
  dsm::NodeId peer = dsm::kNoNode;
  std::uint64_t id = 0;  // object / lock / barrier id value
  std::int64_t value = 0;
};

/// Bounded in-memory trace buffer. Disabled by default; enabling costs one
/// branch per protocol event.
class Trace {
 public:
  explicit Trace(std::size_t capacity = 1 << 16) : capacity_(capacity) {}

  void Enable() { enabled_ = true; }
  void Disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  void Record(Event event) {
    if (!enabled_) return;
    if (events_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    events_.push_back(event);
  }

  const std::vector<Event>& events() const { return events_; }
  std::uint64_t dropped() const { return dropped_; }
  void Clear() {
    events_.clear();
    dropped_ = 0;
  }

  /// Events matching a predicate (e.g., one object's history).
  std::vector<Event> Select(
      const std::function<bool(const Event&)>& pred) const;

  /// All events touching one object, in order.
  std::vector<Event> ForObject(dsm::ObjectId obj) const;

  /// Human-readable dump (one line per event).
  void Dump(std::ostream& os, std::size_t limit = ~std::size_t{0}) const;

 private:
  std::size_t capacity_;
  bool enabled_ = false;
  std::vector<Event> events_;
  std::uint64_t dropped_ = 0;
};

}  // namespace hmdsm::trace
