// Protocol event tracing.
//
// An optional, zero-cost-when-disabled event sink the DSM agents feed with
// coherence-protocol events (fault-ins, diffs, migrations, redirects, lock
// transfers). Used by tests to assert event orderings, by examples to
// narrate a run, by developers to debug protocol changes, and — through
// the Chrome trace-event exporter — to open whole runs as a timeline in
// Perfetto / chrome://tracing.
//
// Timestamps are backend-neutral: nanoseconds on the owning transport's
// clock (virtual time on the simulator — so sim traces stay deterministic —
// wall-clock ns since transport construction on threads/sockets). Record is
// thread-safe: on the threads and sockets backends every dispatcher thread
// feeds the same sink.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/dsm/types.h"

namespace hmdsm::stats {
class Timeseries;
}  // namespace hmdsm::stats

namespace hmdsm::trace {

enum class What : std::uint8_t {
  kObjectCreated,
  kFaultIn,        // request sent (node = requester, peer = target)
  kServeRequest,   // served at home (node = home, peer = requester)
  kRedirected,     // redirect reply (node = obsolete home, peer = requester)
  kDiffSent,       // standalone diff (node = writer, peer = target)
  kDiffApplied,    // at home (node = home, peer = writer)
  kMigrated,       // home transfer (node = old home, peer = new home)
  kHomeInstalled,  // migration reply installed (node = new home)
  kLockGranted,    // manager granted (node = manager, peer = holder)
  kBarrierDone,    // barrier released (node = manager)
  kDecision,       // migration policy consulted (node = home, peer =
                   // requester, value = live threshold scaled by 1000,
                   // negative when the verdict was "stay")
  kPhaseMark,      // workload phase transition (node = marking worker)
  kPeerSuspect,    // liveness: peer missed beats (node = observer, peer =
                   // suspect rank, value = missed beat intervals)
  kPeerDead,       // liveness: peer declared dead (node = observer)
};

std::string_view WhatName(What what);

/// One trace record. `at` is in nanoseconds on the recording backend's
/// clock. `value` is event-specific: hops for kRedirected / kServeRequest,
/// diff bytes for diff events, live threshold (scaled by 1000) for
/// kMigrated.
struct Event {
  std::int64_t at = 0;
  What what = What::kFaultIn;
  dsm::NodeId node = 0;
  dsm::NodeId peer = dsm::kNoNode;
  std::uint64_t id = 0;  // object / lock / barrier id value
  std::int64_t value = 0;
};

/// Bounded in-memory trace buffer. Disabled by default; enabling costs one
/// branch per protocol event (plus the mutex when enabled).
class Trace {
 public:
  explicit Trace(std::size_t capacity = 1 << 16) : capacity_(capacity) {}

  void Enable() { enabled_ = true; }
  void Disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  void Record(Event event) {
    if (!enabled_) return;
    std::lock_guard<std::mutex> lock(mu_);
    if (events_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    events_.push_back(event);
  }

  /// Callers must be quiescent (no concurrent Record) for the accessors:
  /// they are read paths for tests and post-run exporters.
  const std::vector<Event>& events() const { return events_; }
  std::uint64_t dropped() const { return dropped_; }
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
    dropped_ = 0;
  }

  /// Events matching a predicate (e.g., one object's history).
  std::vector<Event> Select(
      const std::function<bool(const Event&)>& pred) const;

  /// All events touching one object, in order.
  std::vector<Event> ForObject(dsm::ObjectId obj) const;

  /// Human-readable dump (one line per event).
  void Dump(std::ostream& os, std::size_t limit = ~std::size_t{0}) const;

 private:
  std::size_t capacity_;
  bool enabled_ = false;
  std::mutex mu_;
  std::vector<Event> events_;
  std::uint64_t dropped_ = 0;
};

// ---------------------------------------------------------------------------
// Chrome trace-event / Perfetto JSON export
// ---------------------------------------------------------------------------

/// Writes one Chrome trace-event JSON object per line (no separators): the
/// shard format one rank of a multi-process mesh emits. `pid` becomes the
/// Perfetto process track (rank), each event's node the thread track.
/// `process_name` labels the pid track via a metadata event. When `series`
/// is non-null its samples are appended as Chrome counter events
/// (`"ph":"C"`) so Perfetto renders per-node rate tracks alongside the
/// instant events.
void WriteChromeEvents(std::ostream& os, const std::vector<Event>& events,
                       std::uint32_t pid, std::string_view process_name,
                       const stats::Timeseries* series = nullptr);

/// Writes the time-series as Chrome counter events, one "rates node N" and
/// one "sends node N" track per node tag found in the samples.
void WriteChromeCounterEvents(std::ostream& os,
                              const stats::Timeseries& series,
                              std::uint32_t pid);

/// Writes a complete, Perfetto-loadable `{"traceEvents":[...]}` file.
/// Returns false (and reports on stderr) if the file cannot be written.
bool WriteChromeTraceFile(const std::string& path,
                          const std::vector<Event>& events, std::uint32_t pid,
                          std::string_view process_name,
                          const stats::Timeseries* series = nullptr);

/// The shard path rank `rank` of a mesh writes its events to.
std::string ShardPath(const std::string& path, std::uint32_t rank);

/// Writes one rank's shard (newline-delimited event objects).
bool WriteChromeShard(const std::string& path, std::uint32_t rank,
                      const std::vector<Event>& events,
                      std::string_view process_name,
                      const stats::Timeseries* series = nullptr);

/// Merges per-rank shards `path.rank0..path.rank<nodes-1>` into one
/// Perfetto-loadable trace at `path`, then removes the shards. Missing
/// shards are skipped (a rank with tracing off simply contributes no
/// events). Returns false if the merged file cannot be written.
bool MergeChromeShards(const std::string& path, std::uint32_t nodes);

}  // namespace hmdsm::trace
