#include "src/trace/trace.h"

#include <ostream>

#include "src/util/table.h"

namespace hmdsm::trace {

std::string_view WhatName(What what) {
  switch (what) {
    case What::kObjectCreated: return "object-created";
    case What::kFaultIn: return "fault-in";
    case What::kServeRequest: return "serve-request";
    case What::kRedirected: return "redirected";
    case What::kDiffSent: return "diff-sent";
    case What::kDiffApplied: return "diff-applied";
    case What::kMigrated: return "migrated";
    case What::kHomeInstalled: return "home-installed";
    case What::kLockGranted: return "lock-granted";
    case What::kBarrierDone: return "barrier-done";
  }
  return "?";
}

std::vector<Event> Trace::Select(
    const std::function<bool(const Event&)>& pred) const {
  std::vector<Event> out;
  for (const Event& e : events_)
    if (pred(e)) out.push_back(e);
  return out;
}

std::vector<Event> Trace::ForObject(dsm::ObjectId obj) const {
  return Select([&](const Event& e) {
    switch (e.what) {
      case What::kLockGranted:
      case What::kBarrierDone:
        return false;
      default:
        return e.id == obj.value;
    }
  });
}

void Trace::Dump(std::ostream& os, std::size_t limit) const {
  std::size_t shown = 0;
  for (const Event& e : events_) {
    if (shown++ >= limit) {
      os << "... (" << events_.size() - limit << " more)\n";
      break;
    }
    os << FmtSeconds(sim::ToSeconds(e.at)) << "  node" << e.node << "  "
       << WhatName(e.what);
    if (e.peer != dsm::kNoNode) os << " peer=node" << e.peer;
    os << " id=" << std::hex << e.id << std::dec;
    if (e.value != 0) os << " value=" << e.value;
    os << '\n';
  }
  if (dropped_ > 0) os << "(" << dropped_ << " events dropped)\n";
}

}  // namespace hmdsm::trace
