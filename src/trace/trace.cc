#include "src/trace/trace.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <set>
#include <sstream>

#include "src/stats/timeseries.h"
#include "src/util/table.h"

namespace hmdsm::trace {

std::string_view WhatName(What what) {
  switch (what) {
    case What::kObjectCreated: return "object-created";
    case What::kFaultIn: return "fault-in";
    case What::kServeRequest: return "serve-request";
    case What::kRedirected: return "redirected";
    case What::kDiffSent: return "diff-sent";
    case What::kDiffApplied: return "diff-applied";
    case What::kMigrated: return "migrated";
    case What::kHomeInstalled: return "home-installed";
    case What::kLockGranted: return "lock-granted";
    case What::kBarrierDone: return "barrier-done";
    case What::kDecision: return "decision";
    case What::kPhaseMark: return "phase-mark";
    case What::kPeerSuspect: return "peer-suspect";
    case What::kPeerDead: return "peer-dead";
  }
  return "?";
}

std::vector<Event> Trace::Select(
    const std::function<bool(const Event&)>& pred) const {
  std::vector<Event> out;
  for (const Event& e : events_)
    if (pred(e)) out.push_back(e);
  return out;
}

std::vector<Event> Trace::ForObject(dsm::ObjectId obj) const {
  return Select([&](const Event& e) {
    switch (e.what) {
      case What::kLockGranted:
      case What::kBarrierDone:
        return false;
      default:
        return e.id == obj.value;
    }
  });
}

void Trace::Dump(std::ostream& os, std::size_t limit) const {
  std::size_t shown = 0;
  for (const Event& e : events_) {
    if (shown++ >= limit) {
      os << "... (" << events_.size() - limit << " more)\n";
      break;
    }
    os << FmtSeconds(static_cast<double>(e.at) * 1e-9) << "  node" << e.node
       << "  " << WhatName(e.what);
    if (e.peer != dsm::kNoNode) os << " peer=node" << e.peer;
    os << " id=" << std::hex << e.id << std::dec;
    if (e.value != 0) os << " value=" << e.value;
    os << '\n';
  }
  if (dropped_ > 0) os << "(" << dropped_ << " events dropped)\n";
}

// ---------------------------------------------------------------------------
// Chrome trace-event / Perfetto JSON export
// ---------------------------------------------------------------------------

namespace {

void WriteJsonString(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Microsecond timestamp with nanosecond resolution kept as decimals —
/// the trace-event format's `ts` unit is microseconds.
void WriteTs(std::ostream& os, std::int64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%lld.%03d",
                static_cast<long long>(ns / 1000),
                static_cast<int>(ns < 0 ? 0 : ns % 1000));
  os << buf;
}

/// Creates the target's parent directory if needed (e.g. a results/ dir
/// that only materializes later in the run). Best-effort: a failure shows
/// up as the ofstream error the caller already reports.
void EnsureParentDir(const std::string& path) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (parent.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(parent, ec);
}

void WriteOneEvent(std::ostream& os, const Event& e, std::uint32_t pid) {
  os << R"({"name":")" << WhatName(e.what)
     << R"(","ph":"i","s":"t","ts":)";
  WriteTs(os, e.at);
  os << R"(,"pid":)" << pid << R"(,"tid":)" << e.node << R"(,"args":{"id":)"
     << e.id;
  if (e.peer != dsm::kNoNode) os << R"(,"peer":)" << e.peer;
  if (e.value != 0) os << R"(,"value":)" << e.value;
  os << "}}";
}

}  // namespace

void WriteChromeEvents(std::ostream& os, const std::vector<Event>& events,
                       std::uint32_t pid, std::string_view process_name,
                       const stats::Timeseries* series) {
  os << R"({"name":"process_name","ph":"M","pid":)" << pid
     << R"(,"args":{"name":)";
  WriteJsonString(os, process_name);
  os << "}}\n";
  std::set<dsm::NodeId> nodes;
  for (const Event& e : events) nodes.insert(e.node);
  for (const dsm::NodeId n : nodes) {
    os << R"({"name":"thread_name","ph":"M","pid":)" << pid << R"(,"tid":)"
       << n << R"(,"args":{"name":"node )" << n << "\"}}\n";
  }
  for (const Event& e : events) {
    WriteOneEvent(os, e, pid);
    os << '\n';
  }
  if (series != nullptr) WriteChromeCounterEvents(os, *series, pid);
}

void WriteChromeCounterEvents(std::ostream& os,
                              const stats::Timeseries& series,
                              std::uint32_t pid) {
  char buf[64];
  for (const stats::Sample& s : series.samples()) {
    const double dt_s = static_cast<double>(s.dt_ns) * 1e-9;
    if (dt_s <= 0) continue;
    const auto rate = [&](std::uint64_t v) {
      std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(v) / dt_s);
      return buf;
    };
    os << R"({"name":"rates node )" << s.node << R"(","ph":"C","ts":)";
    WriteTs(os, s.at_ns);
    os << R"(,"pid":)" << pid << R"(,"args":{"msgs_per_s":)" << rate(s.msgs)
       << R"(,"faults_per_s":)" << rate(s.faults)
       << R"(,"migrations_per_s":)" << rate(s.migrations) << "}}\n";
    os << R"({"name":"sends node )" << s.node << R"(","ph":"C","ts":)";
    WriteTs(os, s.at_ns);
    os << R"(,"pid":)" << pid << R"(,"args":{)";
    for (std::size_t c = 0; c < stats::kNumMsgCats; ++c) {
      if (c != 0) os << ',';
      os << '"' << stats::MsgCatName(static_cast<stats::MsgCat>(c))
         << "\":" << s.cat_msgs[c];
    }
    os << "}}\n";
  }
}

bool WriteChromeTraceFile(const std::string& path,
                          const std::vector<Event>& events, std::uint32_t pid,
                          std::string_view process_name,
                          const stats::Timeseries* series) {
  EnsureParentDir(path);
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "trace: cannot write %s\n", path.c_str());
    return false;
  }
  std::ostringstream lines;
  WriteChromeEvents(lines, events, pid, process_name, series);
  os << "{\"traceEvents\":[";
  bool first = true;
  std::istringstream in(lines.str());
  for (std::string line; std::getline(in, line);) {
    if (line.empty()) continue;
    if (!first) os << ",\n";
    first = false;
    os << line;
  }
  os << "]}\n";
  return static_cast<bool>(os);
}

std::string ShardPath(const std::string& path, std::uint32_t rank) {
  return path + ".rank" + std::to_string(rank);
}

bool WriteChromeShard(const std::string& path, std::uint32_t rank,
                      const std::vector<Event>& events,
                      std::string_view process_name,
                      const stats::Timeseries* series) {
  const std::string shard = ShardPath(path, rank);
  EnsureParentDir(shard);
  std::ofstream os(shard);
  if (!os) {
    std::fprintf(stderr, "trace: cannot write %s\n", shard.c_str());
    return false;
  }
  WriteChromeEvents(os, events, rank, process_name, series);
  return static_cast<bool>(os);
}

bool MergeChromeShards(const std::string& path, std::uint32_t nodes) {
  EnsureParentDir(path);
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "trace: cannot write %s\n", path.c_str());
    return false;
  }
  os << "{\"traceEvents\":[";
  bool first = true;
  for (std::uint32_t rank = 0; rank < nodes; ++rank) {
    const std::string shard = ShardPath(path, rank);
    std::ifstream in(shard);
    if (!in) continue;  // that rank recorded nothing
    for (std::string line; std::getline(in, line);) {
      if (line.empty()) continue;
      if (!first) os << ",\n";
      first = false;
      os << line;
    }
    in.close();
    std::remove(shard.c_str());
  }
  os << "]}\n";
  return static_cast<bool>(os);
}

}  // namespace hmdsm::trace
